package metrics

// Stage-level RPC latency attribution: every server-side RPC carries one
// value-embedded Span that timestamps the dispatch pipeline's stages —
// socket read, queue wait, RPC decode, duplicate-cache check, VFS/memfs
// service, reply encode, socket send — plus the time it spent waiting on
// instrumented locks. Spans aggregate into per-stage log-bucket histograms
// (rpc.stage.<name>.us) and the slowest N land in a bounded ring that dumps
// as Chrome chrome://tracing JSON, so "where does the microsecond go" has a
// first-class answer instead of a whole-RPC blur.
//
// The design constraint is the PR 4 allocation budget: recording a span
// must add zero allocations on the hot path. A Span is a fixed-size value
// (no maps, no slices), the per-stage histograms are interned once, and the
// ring admits candidates through a lock-free threshold check, so the
// steady-state cost is a handful of clock reads per RPC.

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Stage indexes one segment of the server-side RPC pipeline.
type Stage uint8

// Pipeline stages, in wire order. A stage's duration is the gap between
// its stamp and the previous stage's stamp.
const (
	StageRead     Stage = iota // socket read + mbuf staging
	StageQueue                 // job queue residency until an nfsd picks it up
	StageDecode                // RPC call header decode
	StageDupcheck              // duplicate-request-cache begin
	StageService               // VFS/memfs dispatch (includes result marshalling)
	StageEncode                // reply commit + linearization for the socket
	StageSend                  // socket write
	NumStages
)

var stageNames = [NumStages]string{
	"read", "queue", "decode", "dupcheck", "service", "encode", "send",
}

// String returns the stage's short name (the one used in metric names).
func (st Stage) String() string {
	if int(st) < len(stageNames) {
		return stageNames[st]
	}
	return fmt.Sprintf("stage%d", st)
}

// StageNames lists the pipeline stages in order, for renderers.
func StageNames() [NumStages]string { return stageNames }

// Span is the per-request record: a begin time plus the pipeline offsets.
// It is a plain value — embed it in a job struct or reuse one per worker
// goroutine; recording never retains the pointer.
type Span struct {
	XID    uint32
	Proc   uint32
	Worker int32 // nfsd pool index; -1 for per-connection (TCP) serving
	Err    bool  // the call resolved to an error or produced no reply
	Peer   string
	Begin  time.Time
	// end[st] is the ns offset from Begin at which stage st finished;
	// 0 means the stage was never reached (the span stopped early).
	end [NumStages]int64
	// LockWaitNS accumulates time this request spent blocked on
	// instrumented locks (dupcache shards, cache stripes, inode locks,
	// the crash gate), wherever the span was in scope.
	LockWaitNS int64
}

// Reset re-arms the span for a new request beginning at t, keeping nothing
// from the previous use.
func (sp *Span) Reset(t time.Time) {
	*sp = Span{Begin: t, Worker: -1}
}

// Stamp marks stage st as finished now. Nil-safe so call sites on paths
// that may run without a span (the simulator) stay unconditional.
func (sp *Span) Stamp(st Stage) {
	if sp == nil {
		return
	}
	d := int64(time.Since(sp.Begin))
	if d <= 0 {
		d = 1 // clock granularity: a reached stage is distinguishable from an unreached one
	}
	sp.end[st] = d
}

// SetStageEnd records a pre-measured offset (ns from Begin) for st.
func (sp *Span) SetStageEnd(st Stage, ns int64) {
	if sp == nil {
		return
	}
	if ns <= 0 {
		ns = 1
	}
	sp.end[st] = ns
}

// SetCall records the request identity once the header is decoded. Nil-safe.
func (sp *Span) SetCall(xid, proc uint32) {
	if sp != nil {
		sp.XID, sp.Proc = xid, proc
	}
}

// SetErr marks the span's request as failed (decode garbage, NFS error, or
// a dropped in-flight duplicate). Nil-safe.
func (sp *Span) SetErr() {
	if sp != nil {
		sp.Err = true
	}
}

// AddLockWait credits ns of lock wait to the span. Nil-safe.
func (sp *Span) AddLockWait(ns int64) {
	if sp != nil {
		sp.LockWaitNS += ns
	}
}

// StageNS returns the duration of stage st in ns: the gap from the latest
// earlier stamped stage (or zero) to st's stamp. Unreached stages are 0.
func (sp *Span) StageNS(st Stage) int64 {
	e := sp.end[st]
	if e == 0 {
		return 0
	}
	var prev int64
	for i := int(st) - 1; i >= 0; i-- {
		if sp.end[i] != 0 {
			prev = sp.end[i]
			break
		}
	}
	d := e - prev
	if d < 0 {
		d = 0
	}
	return d
}

// TotalNS returns the span's full pipeline time: the latest stamp.
func (sp *Span) TotalNS() int64 {
	for i := int(NumStages) - 1; i >= 0; i-- {
		if sp.end[i] != 0 {
			return sp.end[i]
		}
	}
	return 0
}

// StageStats aggregates spans into the rpc.stage.* histograms and feeds
// the slowest ones to a SpanRing. One instance serves a whole frontend;
// Record is safe for concurrent use.
type StageStats struct {
	stages   [NumStages]*Histogram
	total    *Histogram
	lockwait *Histogram
	ring     *SpanRing
}

// DefaultSlowSpans is the ring depth frontends use unless told otherwise.
const DefaultSlowSpans = 128

// NewStageStats interns the per-stage histograms (rpc.stage.<name>.us,
// values in microseconds) in r and sizes the slow-span ring.
func NewStageStats(r *Registry, slowN int) *StageStats {
	ss := &StageStats{
		total:    r.Histogram("rpc.stage.total.us"),
		lockwait: r.Histogram("rpc.stage.lockwait.us"),
		ring:     NewSpanRing(slowN),
	}
	for st := Stage(0); st < NumStages; st++ {
		ss.stages[st] = r.Histogram("rpc.stage." + st.String() + ".us")
	}
	return ss
}

// Record folds one finished span into the histograms and offers it to the
// slow ring. Only reached stages are observed, so per-stage counts reveal
// how far requests got (a dropped duplicate never reaches encode).
func (ss *StageStats) Record(sp *Span) {
	const usPerNS = 1.0 / float64(time.Microsecond)
	for st := Stage(0); st < NumStages; st++ {
		if sp.end[st] != 0 {
			ss.stages[st].Observe(float64(sp.StageNS(st)) * usPerNS)
		}
	}
	ss.total.Observe(float64(sp.TotalNS()) * usPerNS)
	if sp.LockWaitNS > 0 {
		ss.lockwait.Observe(float64(sp.LockWaitNS) * usPerNS)
	}
	ss.ring.Offer(sp)
}

// Ring exposes the slow-span ring (trace dumps read it).
func (ss *StageStats) Ring() *SpanRing { return ss.ring }

// SpanRing keeps the slowest N spans seen so far. Admission is gated by a
// lock-free threshold: once the ring is full, spans faster than the
// slowest-N cutoff return after one atomic load, so the common case costs
// nothing and the mutex only serializes genuine tail events.
type SpanRing struct {
	floorNS atomic.Int64 // admission cutoff once full (the ring's minimum total)
	mu      sync.Mutex
	spans   []Span // fixed capacity, unordered
}

// NewSpanRing returns a ring keeping the slowest n spans (n >= 1).
func NewSpanRing(n int) *SpanRing {
	if n < 1 {
		n = 1
	}
	return &SpanRing{spans: make([]Span, 0, n)}
}

// Offer copies sp into the ring if it ranks among the slowest seen.
func (r *SpanRing) Offer(sp *Span) {
	total := sp.TotalNS()
	if total <= r.floorNS.Load() {
		return // fast reject: full ring, not slow enough
	}
	r.mu.Lock()
	if len(r.spans) < cap(r.spans) {
		r.spans = append(r.spans, *sp)
		if len(r.spans) == cap(r.spans) {
			r.floorNS.Store(r.minLocked())
		}
		r.mu.Unlock()
		return
	}
	// Replace the current minimum (the threshold may lag under races;
	// re-check under the lock).
	minIdx, minTotal := 0, r.spans[0].TotalNS()
	for i := 1; i < len(r.spans); i++ {
		if t := r.spans[i].TotalNS(); t < minTotal {
			minIdx, minTotal = i, t
		}
	}
	if total > minTotal {
		r.spans[minIdx] = *sp
		r.floorNS.Store(r.minLocked())
	}
	r.mu.Unlock()
}

// minLocked returns the smallest total in the ring (caller holds mu).
func (r *SpanRing) minLocked() int64 {
	min := r.spans[0].TotalNS()
	for i := 1; i < len(r.spans); i++ {
		if t := r.spans[i].TotalNS(); t < min {
			min = t
		}
	}
	return min
}

// Len returns the number of spans held.
func (r *SpanRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Slowest returns the held spans, slowest first.
func (r *SpanRing) Slowest() []Span {
	r.mu.Lock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].TotalNS() > out[j].TotalNS() })
	return out
}

// WriteChromeTrace renders spans as a Chrome trace-event JSON document
// (load it at chrome://tracing or https://ui.perfetto.dev). Each span
// becomes one complete event per reached stage, on a track per worker
// (tid; TCP connections share tid -1's track rendered as 9999). procName
// renders procedure numbers; nil falls back to "procN". Timestamps are
// microseconds relative to the earliest span, so output is deterministic
// given deterministic spans (the golden test relies on this).
func WriteChromeTrace(w io.Writer, spans []Span, procName func(uint32) string) error {
	name := procName
	if name == nil {
		name = func(p uint32) string { return fmt.Sprintf("proc%d", p) }
	}
	base := time.Time{}
	for i := range spans {
		if base.IsZero() || spans[i].Begin.Before(base) {
			base = spans[i].Begin
		}
	}
	// Stable order: by begin time, then XID, so dumps are reproducible.
	ordered := make([]Span, len(spans))
	copy(ordered, spans)
	sort.Slice(ordered, func(i, j int) bool {
		if !ordered[i].Begin.Equal(ordered[j].Begin) {
			return ordered[i].Begin.Before(ordered[j].Begin)
		}
		return ordered[i].XID < ordered[j].XID
	})
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	for i := range ordered {
		sp := &ordered[i]
		tid := sp.Worker
		if tid < 0 {
			tid = 9999 // per-connection TCP serving, no pool slot
		}
		startUS := float64(sp.Begin.Sub(base)) / float64(time.Microsecond)
		var prevNS int64
		for st := Stage(0); st < NumStages; st++ {
			if sp.end[st] == 0 {
				continue
			}
			durNS := sp.end[st] - prevNS
			if durNS < 0 {
				durNS = 0
			}
			if !first {
				if _, err := io.WriteString(w, ",\n"); err != nil {
					return err
				}
			}
			first = false
			_, err := fmt.Fprintf(w,
				`{"name":%q,"cat":"rpc","ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":%d,"args":{"proc":%q,"xid":%d,"peer":%q,"lockwait_ns":%d}}`,
				st.String(), startUS+float64(prevNS)/1e3, float64(durNS)/1e3,
				tid, name(sp.Proc), sp.XID, sp.Peer, sp.LockWaitNS)
			if err != nil {
				return err
			}
			prevNS = sp.end[st]
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}
