package metrics

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: fixed logarithmic boundaries, factor 2 apart,
// covering 1 µs to ~4600 s when values are recorded in milliseconds.
// Fixed boundaries keep Observe lock-free (an index computation plus one
// atomic add) and make snapshots of concurrent histograms subtractable
// bucket-by-bucket — the property the `nfsstat -z` delta workflow needs.
const (
	// histFirstBound is the upper bound of bucket 0, in recorded units
	// (milliseconds by convention): 0.001 ms = 1 µs.
	histFirstBound = 0.001
	// histBuckets is the number of log buckets; the last is a catch-all.
	histBuckets = 33
)

// histBounds returns the shared upper-bound table (bound[i] = 2^i µs).
func histBounds() []float64 {
	b := make([]float64, histBuckets)
	v := histFirstBound
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}

// Histogram accumulates a latency distribution in fixed log buckets with
// atomic updates. Percentiles come from linear interpolation inside the
// bucket containing the requested rank — following nanoPU's point that
// RPC performance lives in the tail, not the mean.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	// sumMilli holds the running sum in 1/1000ths of the recorded unit.
	// A fixed-point integer makes the hot-path update a single wait-free
	// atomic add; the old float64-bits CAS loop was a measurable
	// serialization point once many nfsds observe one histogram (every
	// retry re-reads a contended cache line). At 1e-3 resolution a
	// millisecond-unit histogram sums exactly to the microsecond and
	// overflows after ~292k years of accumulated latency.
	sumMilli atomic.Int64
	minBits  atomic.Uint64
	maxBits  atomic.Uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// bucketOf maps a value to its bucket index.
func bucketOf(v float64) int {
	if v <= histFirstBound {
		return 0
	}
	i := int(math.Ceil(math.Log2(v/histFirstBound))) + 0
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// Observe folds in one value (milliseconds by convention).
func (h *Histogram) Observe(v float64) {
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sumMilli.Add(int64(v*1000 + 0.5))
	casMin(&h.minBits, v)
	casMax(&h.maxBits, v)
}

// ObserveDuration folds in a duration as milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     float64(h.sumMilli.Load()) / 1000,
		Min:     math.Float64frombits(h.minBits.Load()),
		Max:     math.Float64frombits(h.maxBits.Load()),
		Buckets: make([]int64, histBuckets),
	}
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	if s.Count == 0 {
		s.Min, s.Max = 0, 0
	}
	return s
}

// Quantile is a convenience for Snapshot().Quantile(p).
func (h *Histogram) Quantile(p float64) float64 { return h.Snapshot().Quantile(p) }

// Mean is a convenience for Snapshot().Mean().
func (h *Histogram) Mean() float64 { return h.Snapshot().Mean() }

// HistogramSnapshot is an immutable copy of a histogram, the unit the
// encoders ship and the delta workflow subtracts.
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	Sum     float64 `json:"sum"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Buckets []int64 `json:"buckets"`
}

// Mean returns the arithmetic mean (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile returns the p-th percentile (0 < p <= 100) by linear
// interpolation within the bucket holding the rank, clamped to the
// observed min/max so small samples do not report bucket-boundary
// artifacts.
func (s HistogramSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := p / 100 * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	bounds := histBounds()
	var cum int64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			hi := bounds[i]
			// The catch-all bucket has no real upper bound; the observed
			// maximum is the honest one.
			if i == len(s.Buckets)-1 && s.Max > hi {
				hi = s.Max
			}
			// Position of the rank within this bucket, 0..1.
			frac := (rank - float64(cum)) / float64(c)
			v := lo + frac*(hi-lo)
			if v < s.Min {
				v = s.Min
			}
			if v > s.Max {
				v = s.Max
			}
			return v
		}
		cum += c
	}
	return s.Max
}

// Add returns the merge of two snapshots (bucket-wise sum) — aggregating
// per-client distributions into a fleet-wide one, as the multi-client
// experiments do. Merging empty snapshots is fine.
func (s HistogramSnapshot) Add(o HistogramSnapshot) HistogramSnapshot {
	if s.Count == 0 {
		return o
	}
	if o.Count == 0 {
		return s
	}
	m := HistogramSnapshot{
		Count:   s.Count + o.Count,
		Sum:     s.Sum + o.Sum,
		Min:     math.Min(s.Min, o.Min),
		Max:     math.Max(s.Max, o.Max),
		Buckets: make([]int64, len(s.Buckets)),
	}
	for i := range s.Buckets {
		m.Buckets[i] = s.Buckets[i]
		if i < len(o.Buckets) {
			m.Buckets[i] += o.Buckets[i]
		}
	}
	return m
}

// Sub returns s minus prev bucket-by-bucket. Min and max keep the current
// cumulative values (an interval min/max would need per-interval state the
// atomic histogram deliberately does not carry).
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	if prev.Count == 0 {
		return s
	}
	d := HistogramSnapshot{
		Count:   s.Count - prev.Count,
		Sum:     s.Sum - prev.Sum,
		Min:     s.Min,
		Max:     s.Max,
		Buckets: make([]int64, len(s.Buckets)),
	}
	for i := range s.Buckets {
		d.Buckets[i] = s.Buckets[i]
		if i < len(prev.Buckets) {
			d.Buckets[i] -= prev.Buckets[i]
		}
	}
	return d
}

func casMin(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func casMax(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}
