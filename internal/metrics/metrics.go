// Package metrics is the observability core: a registry of atomic
// counters, gauges and log-bucket latency histograms, with snapshot and
// delta support and text/JSON encoders.
//
// The paper's tuning results (§3, §4) all came from measurement — kernel
// profiling plus nfsstat-style counters — and this package is the
// reproduction's equivalent instrument. Every metric is safe for
// concurrent update without any external lock (the real-socket frontends
// record stats outside the nfsnet "kernel lock"), and safe to snapshot
// while writers are running. Inside the discrete-event simulator the same
// types work unchanged; atomicity is simply free there.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Store sets the counter to v: used to mirror externally maintained
// monotonic counters (e.g. the mbuf pool statistics) into a registry.
func (c *Counter) Store(v int64) { c.v.Store(v) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically updatable instantaneous value (e.g. the
// congestion window, outstanding requests).
type Gauge struct {
	bits atomic.Uint64
}

// Set records the current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last value set.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry is a named collection of metrics. Metric creation is
// lock-protected; updates to the returned metrics are lock-free.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	// Registry-lock contention telemetry (the registry is a named suspect
	// in the multicore scaling hunt): lock waits show up in snapshots as
	// the synthetic counters metrics.registry.contended / .wait_us. The
	// hot path never takes mu — metric handles are interned — so nonzero
	// numbers here mean somebody looks metrics up per call.
	lockContended atomic.Int64
	lockWaitNS    atomic.Int64
}

// lock takes mu, recording wait time when it has to block.
func (r *Registry) lock() {
	if r.mu.TryLock() {
		return
	}
	t0 := time.Now()
	r.mu.Lock()
	r.lockContended.Add(1)
	r.lockWaitNS.Add(int64(time.Since(t0)))
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.lock()
	defer r.mu.Unlock()
	c := r.counts[name]
	if c == nil {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with
// the default latency bucket layout.
func (r *Registry) Histogram(name string) *Histogram {
	r.lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// Snapshot captures a consistent-enough view of every metric. Writers may
// race individual updates but each value read is itself atomic, which is
// the same guarantee nfsstat had reading live kernel counters.
func (r *Registry) Snapshot() *Snapshot {
	r.lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		Counters:   make(map[string]int64, len(r.counts)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counts {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	if n := r.lockContended.Load(); n > 0 {
		s.Counters["metrics.registry.contended"] = n
		s.Counters["metrics.registry.wait_us"] = r.lockWaitNS.Load() / 1000
	}
	return s
}

// Snapshot is a point-in-time copy of a registry, serializable as JSON
// (the nfsd stats endpoint's wire format) and subtractable for the
// classic `nfsstat -z` interval-delta workflow.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Delta returns s minus prev: counters and histogram buckets subtract,
// gauges keep their current value. Metrics missing from prev pass
// through unchanged.
func (s *Snapshot) Delta(prev *Snapshot) *Snapshot {
	if prev == nil {
		return s
	}
	d := &Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		d.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		d.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		d.Histograms[name] = h.Sub(prev.Histograms[name])
	}
	return d
}

// MarshalJSON uses the default struct encoding (declared explicitly so the
// wire format is a documented API, not an accident).
func (s *Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot
	return json.Marshal((*alias)(s))
}

// WriteText renders the snapshot as aligned text tables: counters and
// gauges first, then one row per histogram with interpolated percentiles.
func (s *Snapshot) WriteText(w io.Writer) {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%-40s %12d\n", name, s.Counters[name])
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%-40s %12.2f\n", name, s.Gauges[name])
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) > 0 {
		fmt.Fprintf(w, "%-40s %10s %10s %10s %10s %10s %10s\n",
			"histogram", "count", "mean", "p50", "p95", "p99", "max")
	}
	for _, name := range names {
		h := s.Histograms[name]
		fmt.Fprintf(w, "%-40s %10d %10.2f %10.2f %10.2f %10.2f %10.2f\n",
			name, h.Count, h.Mean(), h.Quantile(50), h.Quantile(95), h.Quantile(99), h.Max)
	}
}
