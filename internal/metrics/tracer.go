package metrics

import (
	"fmt"
	"time"
)

// Tracer receives typed RPC lifecycle events. The transports, the client,
// the server and the IP reassembler all emit through one of these when
// configured; implementations must be cheap and must not block (inside
// the simulator they run on the simulation's critical path).
//
// A nil Tracer everywhere is the default: tracing costs nothing unless
// someone is watching.
type Tracer interface {
	Event(ev Event)
}

// Event is one RPC lifecycle occurrence.
type Event interface {
	// Kind returns a short stable name for the event type.
	Kind() string
}

// CallSent: a request (first transmission) left the transport.
type CallSent struct {
	Proc uint32
	XID  uint32
}

// Retransmit: a request was retransmitted after its RTO expired.
type Retransmit struct {
	Proc    uint32
	XID     uint32
	Backoff int // retransmission count for this call, 1-based
	RTO     time.Duration
}

// RTOBackoff: the transport backed a call's timer off exponentially.
type RTOBackoff struct {
	Proc    uint32
	Backoff int
	RTO     time.Duration
}

// RTTSample: an unambiguous reply produced a round-trip sample and the
// estimator's new state (A, D and RTO = A + kD in the paper's terms).
type RTTSample struct {
	Proc  uint32
	Class string
	RTT   time.Duration
	SRTT  time.Duration
	RTO   time.Duration
}

// CwndChange: the congestion window moved (opened by a reply, halved by a
// retransmit).
type CwndChange struct {
	Cwnd float64
}

// FragDrop: IP reassembly abandoned datagrams by timeout — each one a
// silently lost RPC for fixed-RTO UDP, the §4 failure amplifier.
type FragDrop struct {
	Expired int
}

// Reply: a matching reply completed a call at the transport.
type Reply struct {
	Proc uint32
	XID  uint32
	RTT  time.Duration
}

// CallFailed: a call resolved without a reply — the transport gave up
// (retransmit budget exhausted), was closed, or could not reconnect.
// Together with Reply these make every CallSent's fate observable, which
// is what the conservation invariants in internal/check audit.
type CallFailed struct {
	Proc   uint32
	XID    uint32
	Reason string
}

// DupCacheHit: the server's duplicate request cache suppressed
// re-execution of a retransmitted non-idempotent call.
type DupCacheHit struct {
	Proc uint32
}

// ServerCrash: the server rebooted, losing all volatile state; new leases
// are refused for RecoverFor (the NQNFS recovery window).
type ServerCrash struct {
	RecoverFor time.Duration
}

// LeaseGrant: the server granted (or renewed) a cache lease. File is a
// printable file identity (this package stays protocol-agnostic).
type LeaseGrant struct {
	Peer  string
	File  string
	Write bool
	Term  time.Duration
	// Piggy marks a grant issued in a reply piggyback rather than by an
	// explicit LEASE call.
	Piggy bool
}

// LeaseVacate: a holder released its lease after an eviction notice (or
// the server dropped the holder), so the file is grantable again.
type LeaseVacate struct {
	Peer string
	File string
}

// ServerCall: the server finished one procedure; Service is the in-server
// time from decode to encoded reply. Peer and XID identify the call the
// way the duplicate request cache does, and NonIdempotent marks the
// procedures whose re-execution would corrupt state — together they let an
// auditor assert exactly-once execution under retransmission.
type ServerCall struct {
	Proc          uint32
	Peer          string
	XID           uint32
	NonIdempotent bool
	Service       time.Duration
	Error         bool
}

// ClientCall: a client mount completed one RPC (syscall-level latency,
// including transport queueing and retransmissions).
type ClientCall struct {
	Proc uint32
	RTT  time.Duration
	Err  bool
}

func (CallSent) Kind() string    { return "call_sent" }
func (Retransmit) Kind() string  { return "retransmit" }
func (RTOBackoff) Kind() string  { return "rto_backoff" }
func (RTTSample) Kind() string   { return "rtt_sample" }
func (CwndChange) Kind() string  { return "cwnd" }
func (FragDrop) Kind() string    { return "frag_drop" }
func (Reply) Kind() string       { return "reply" }
func (CallFailed) Kind() string  { return "call_failed" }
func (DupCacheHit) Kind() string { return "dup_hit" }
func (ServerCrash) Kind() string { return "server_crash" }
func (LeaseGrant) Kind() string  { return "lease_grant" }
func (LeaseVacate) Kind() string { return "lease_vacate" }
func (ServerCall) Kind() string  { return "server_call" }
func (ClientCall) Kind() string  { return "client_call" }

// Emit sends ev to tr when a tracer is installed; the nil check lives
// here so call sites stay one line.
func Emit(tr Tracer, ev Event) {
	if tr != nil {
		tr.Event(ev)
	}
}

// FuncTracer adapts a function to the Tracer interface.
type FuncTracer func(ev Event)

// Event implements Tracer.
func (f FuncTracer) Event(ev Event) { f(ev) }

// MultiTracer fans events out to several tracers.
type MultiTracer []Tracer

// Event implements Tracer.
func (m MultiTracer) Event(ev Event) {
	for _, t := range m {
		if t != nil {
			t.Event(ev)
		}
	}
}

// MetricsTracer folds lifecycle events into a Registry: counters for the
// discrete events, gauges for levels, histograms for the timed ones. It
// is how the transports and server publish into the nfsd stats endpoint
// without knowing the registry's naming scheme themselves.
type MetricsTracer struct {
	R *Registry
	// ProcName renders a procedure number for metric names; nil falls
	// back to "procN". Wiring this to nfsproto.ProcName keeps this
	// package protocol-agnostic.
	ProcName func(proc uint32) string
}

func (t *MetricsTracer) proc(p uint32) string {
	if t.ProcName != nil {
		return t.ProcName(p)
	}
	return fmt.Sprintf("proc%d", p)
}

// Event implements Tracer.
func (t *MetricsTracer) Event(ev Event) {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	switch e := ev.(type) {
	case CallSent:
		t.R.Counter("rpc.calls").Inc()
		t.R.Counter("rpc.calls." + t.proc(e.Proc)).Inc()
	case Retransmit:
		t.R.Counter("rpc.retransmits").Inc()
		t.R.Counter("rpc.retransmits." + t.proc(e.Proc)).Inc()
	case RTOBackoff:
		t.R.Counter("rpc.backoffs").Inc()
	case RTTSample:
		t.R.Histogram("rpc.rtt_ms." + t.proc(e.Proc)).Observe(ms(e.RTT))
		t.R.Gauge("rpc.srtt_ms." + e.Class).Set(ms(e.SRTT))
		t.R.Gauge("rpc.rto_ms." + e.Class).Set(ms(e.RTO))
	case CwndChange:
		t.R.Gauge("rpc.cwnd").Set(e.Cwnd)
	case FragDrop:
		t.R.Counter("ip.frag_timeouts").Add(int64(e.Expired))
	case Reply:
		t.R.Counter("rpc.replies").Inc()
		t.R.Histogram("rpc.call_ms." + t.proc(e.Proc)).Observe(ms(e.RTT))
	case CallFailed:
		t.R.Counter("rpc.failures").Inc()
		t.R.Counter("rpc.failures." + t.proc(e.Proc)).Inc()
	case DupCacheHit:
		t.R.Counter("nfs.dup_hits").Inc()
	case ServerCrash:
		t.R.Counter("nfs.server_crashes").Inc()
	case LeaseGrant:
		t.R.Counter("nfs.lease_grants").Inc()
	case LeaseVacate:
		t.R.Counter("nfs.lease_vacates").Inc()
	case ServerCall:
		t.R.Counter("nfs.calls." + t.proc(e.Proc)).Inc()
		t.R.Histogram("nfs.service_ms." + t.proc(e.Proc)).Observe(ms(e.Service))
		if e.Error {
			t.R.Counter("nfs.errors").Inc()
		}
	case ClientCall:
		t.R.Histogram("client.call_ms." + t.proc(e.Proc)).Observe(ms(e.RTT))
		if e.Err {
			t.R.Counter("client.call_errors").Inc()
		}
	}
}
