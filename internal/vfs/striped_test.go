package vfs

import (
	"fmt"
	"sync"
	"testing"
)

// A single-stripe striped cache must behave bit-for-bit like the legacy
// cache it wraps: same hits, misses, evictions, scan counts.
func TestStripedBufCacheSingleStripeMatchesLegacy(t *testing.T) {
	legacy := NewBufCache(4, true)
	striped := NewStripedBufCache(4, true, 1)
	keys := []BufKey{}
	for vn := uint32(1); vn <= 3; vn++ {
		for b := uint32(0); b < 3; b++ {
			keys = append(keys, BufKey{Vnode: vn, Gen: 1, Block: b})
		}
	}
	// Same access sequence through both: lookup-or-insert.
	seq := []int{0, 1, 2, 0, 3, 4, 0, 5, 6, 7, 8, 0, 1, 2}
	for _, i := range seq {
		k := keys[i]
		if b, _ := legacy.Lookup(k); b == nil {
			legacy.Insert(k)
		}
		striped.LookupOrReserve(k, nil)
	}
	ls, ss := legacy.Stats, striped.Stats()
	if ls != ss {
		t.Errorf("stats diverge: legacy %+v striped %+v", ls, ss)
	}
	if legacy.Len() != striped.Len() {
		t.Errorf("len diverges: legacy %d striped %d", legacy.Len(), striped.Len())
	}
}

// Linear-scan (Ultrix) caches must collapse to one stripe: the discipline
// models a single global LRU scan.
func TestStripedBufCacheLinearForcedSingleStripe(t *testing.T) {
	c := NewStripedBufCache(64, false, 8)
	if c.NumStripes() != 1 {
		t.Fatalf("linear cache got %d stripes, want 1", c.NumStripes())
	}
	if c := NewStripedBufCache(64, true, 8); c.NumStripes() != 8 {
		t.Fatalf("chained cache got %d stripes, want 8", c.NumStripes())
	}
}

// Concurrent LookupOrReserve on overlapping keys must never double-insert
// (the legacy pair panics) and must account every operation exactly once.
func TestStripedBufCacheConcurrent(t *testing.T) {
	c := NewStripedBufCache(256, true, 8)
	const workers = 8
	const opsPerWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint32) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				vn := (seed + uint32(i)) % 16
				k := BufKey{Vnode: vn, Gen: 1, Block: uint32(i) % 8}
				c.LookupOrReserve(k, nil)
				if i%7 == 0 {
					c.EnsureResident(k, nil)
				}
				if i%97 == 0 {
					c.InvalidateVnode(vn, 1)
				}
			}
		}(uint32(w))
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits+s.Misses != workers*opsPerWorker {
		t.Errorf("hits %d + misses %d != %d ops", s.Hits, s.Misses, workers*opsPerWorker)
	}
}

func TestStripedNameCacheSingleStripeMatchesLegacy(t *testing.T) {
	legacy := NewNameCache()
	legacy.Capacity = 3
	striped := NewStripedNameCache(1)
	striped.stripes[0].c.Capacity = 3
	type op struct {
		name string
		neg  bool
	}
	ops := []op{{"a", false}, {"b", false}, {"c", true}, {"a", false}, {"d", false}, {"b", false}}
	for i, o := range ops {
		if o.neg {
			legacy.EnterNegative(1, 1, o.name)
			striped.EnterNegative(1, 1, o.name, nil)
		} else {
			legacy.Enter(1, 1, o.name, uint32(i+10), 1)
			striped.Enter(1, 1, o.name, uint32(i+10), 1, nil)
		}
		lv, lg, ln, lf := legacy.Lookup(1, 1, o.name)
		sv, sg, sn, sf := striped.Lookup(1, 1, o.name, nil)
		if lv != sv || lg != sg || ln != sn || lf != sf {
			t.Fatalf("op %d: lookup diverges", i)
		}
	}
	if legacy.Stats != striped.Stats() {
		t.Errorf("stats diverge: legacy %+v striped %+v", legacy.Stats, striped.Stats())
	}
	if legacy.Len() != striped.Len() {
		t.Errorf("len diverges: legacy %d striped %d", legacy.Len(), striped.Len())
	}
}

func TestStripedNameCacheConcurrent(t *testing.T) {
	c := NewStripedNameCache(8)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				name := fmt.Sprintf("f%d", (seed+i)%64)
				dir := uint32((seed + i) % 4)
				c.Enter(dir, 1, name, uint32(i), 1, nil)
				c.Lookup(dir, 1, name, nil)
				switch i % 31 {
				case 0:
					c.Remove(dir, 1, name)
				case 1:
					c.EnterNegative(dir, 1, name, nil)
				case 2:
					c.PurgeDir(dir, 1)
				case 3:
					c.PurgeVnode(uint32(i), 1)
				}
			}
		}(w)
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits+s.Misses != workers*2000 {
		t.Errorf("hits %d + misses %d != %d lookups", s.Hits, s.Misses, workers*2000)
	}
	// Toggling must land on every stripe.
	c.SetEnabled(false)
	if c.Enabled() {
		t.Error("SetEnabled(false) did not stick")
	}
	if _, _, _, found := c.Lookup(0, 1, "f0", nil); found {
		t.Error("disabled cache returned a hit")
	}
}
