// Package vfs provides the VFS-layer caching machinery the 4.3BSD Reno NFS
// implementation is built on: a block buffer cache whose buffers hang off
// vnodes and carry dirty-region bookkeeping (the extra buf fields that let
// Reno write partial blocks without prereading them), and the VFS name
// lookup cache whose effect §5 measures.
//
// The cache is policy-free: it tracks residency, LRU order and dirty state,
// and reports how many buffers a lookup had to examine, so callers can
// charge CPU for the two search disciplines the paper contrasts —
// vnode-chained buffer lists (Reno) versus a linear scan of the whole cache
// (the Sun-reference-port style the paper conjectures explains Ultrix's
// slower lookups).
package vfs

import (
	"container/list"
	"fmt"
)

// BlockSize is the NFS transfer and buffer size used throughout.
const BlockSize = 8192

// BufKey identifies a cached block: a vnode (file id + generation) and a
// block number within it.
type BufKey struct {
	Vnode uint32
	Gen   uint32
	Block uint32
}

// Buf is one cache buffer. Valid and dirty bytes are tracked as ranges
// within the block, after the buf-structure fields Reno added so partial
// writes need no preread.
type Buf struct {
	Key  BufKey
	Data []byte // allocated lazily; nil for presence-only (server) use

	// Valid range [ValidOff, ValidEnd) holds bytes that mirror the file.
	ValidOff, ValidEnd int
	// Dirty range [DirtyOff, DirtyEnd) holds locally modified bytes not
	// yet written to the server/disk. Always within the valid range.
	Dirty              bool
	DirtyOff, DirtyEnd int

	elem *list.Element // LRU position
}

// HasData reports whether the buffer carries actual block data.
func (b *Buf) HasData() bool { return b.Data != nil }

// EnsureData allocates the data block if absent.
func (b *Buf) EnsureData() []byte {
	if b.Data == nil {
		b.Data = make([]byte, BlockSize)
	}
	return b.Data
}

// Covers reports whether [off, end) lies within the valid range.
func (b *Buf) Covers(off, end int) bool {
	return off >= b.ValidOff && end <= b.ValidEnd
}

// Write copies p into the buffer at off, maintaining the valid and dirty
// ranges. It reports needFlush=true (and writes nothing) when the new dirty
// region would be discontiguous with the existing one — the caller must
// push the old dirty region first, exactly as the Reno client does.
func (b *Buf) Write(off int, p []byte) (needFlush bool) {
	end := off + len(p)
	if off < 0 || end > BlockSize {
		panic(fmt.Sprintf("vfs: Buf.Write [%d,%d) outside block", off, end))
	}
	if len(p) == 0 {
		return false
	}
	if b.Dirty && (end < b.DirtyOff || off > b.DirtyEnd) {
		return true
	}
	copy(b.EnsureData()[off:], p)
	if b.Dirty {
		if off < b.DirtyOff {
			b.DirtyOff = off
		}
		if end > b.DirtyEnd {
			b.DirtyEnd = end
		}
	} else {
		b.Dirty = true
		b.DirtyOff, b.DirtyEnd = off, end
	}
	// Extend the valid range. A write contiguous with (or overlapping) the
	// valid range merges; a disjoint write replaces it — the dirty check
	// above already forced a flush for the dangerous case.
	if b.ValidEnd == b.ValidOff { // previously empty
		b.ValidOff, b.ValidEnd = off, end
	} else if end < b.ValidOff || off > b.ValidEnd {
		b.ValidOff, b.ValidEnd = off, end
	} else {
		if off < b.ValidOff {
			b.ValidOff = off
		}
		if end > b.ValidEnd {
			b.ValidEnd = end
		}
	}
	return false
}

// MarkClean clears the dirty state after a successful flush.
func (b *Buf) MarkClean() {
	b.Dirty = false
	b.DirtyOff, b.DirtyEnd = 0, 0
}

// SetValid records that [off, end) now mirrors the file (after a read).
func (b *Buf) SetValid(off, end int) {
	if b.ValidEnd == b.ValidOff {
		b.ValidOff, b.ValidEnd = off, end
		return
	}
	if end >= b.ValidOff && off <= b.ValidEnd {
		if off < b.ValidOff {
			b.ValidOff = off
		}
		if end > b.ValidEnd {
			b.ValidEnd = end
		}
	} else if end-off > b.ValidEnd-b.ValidOff {
		b.ValidOff, b.ValidEnd = off, end
	}
}

// CacheStats counts cache activity.
type CacheStats struct {
	Hits, Misses int
	Evictions    int
	Scanned      int // buffers examined during lookups
}

// BufCache is an LRU block cache. With ChainedLookup (the Reno layout)
// lookups examine only the target vnode's buffers; without it (the
// reference-port layout) every lookup scans the cache LRU list until it
// finds the block, and the caller is told how many buffers were touched so
// it can charge CPU accordingly.
type BufCache struct {
	// Capacity is the maximum number of resident buffers.
	Capacity int
	// ChainedLookup selects the vnode-chained search discipline.
	ChainedLookup bool

	lru    *list.List // front = most recent; values are *Buf
	index  map[BufKey]*Buf
	chains map[uint64][]*Buf // per-vnode buffer chains
	Stats  CacheStats
}

// NewBufCache returns a cache holding at most capacity buffers.
func NewBufCache(capacity int, chained bool) *BufCache {
	return &BufCache{
		Capacity:      capacity,
		ChainedLookup: chained,
		lru:           list.New(),
		index:         make(map[BufKey]*Buf),
		chains:        make(map[uint64][]*Buf),
	}
}

func vnKey(k BufKey) uint64 { return uint64(k.Vnode)<<32 | uint64(k.Gen) }

// Len returns the number of resident buffers.
func (c *BufCache) Len() int { return c.lru.Len() }

// Lookup finds a resident buffer, reporting how many buffers the search
// examined under the configured discipline. It refreshes LRU position on a
// hit.
func (c *BufCache) Lookup(k BufKey) (b *Buf, scanned int) {
	if c.ChainedLookup {
		chain := c.chains[vnKey(k)]
		for i, cb := range chain {
			if cb.Key == k {
				scanned = i + 1
				b = cb
				break
			}
		}
		if b == nil {
			scanned = len(chain)
		}
	} else {
		// Linear scan of the global LRU list, the way a cache without
		// per-vnode chains must search.
		for e := c.lru.Front(); e != nil; e = e.Next() {
			scanned++
			if e.Value.(*Buf).Key == k {
				b = e.Value.(*Buf)
				break
			}
		}
	}
	c.Stats.Scanned += scanned
	if b != nil {
		c.Stats.Hits++
		c.lru.MoveToFront(b.elem)
	} else {
		c.Stats.Misses++
	}
	return b, scanned
}

// Peek finds a resident buffer without LRU refresh or scan accounting.
func (c *BufCache) Peek(k BufKey) *Buf { return c.index[k] }

// Insert adds a buffer for k (which must not be resident) and returns it
// along with the evicted victim, if the capacity forced one out. The caller
// must flush a dirty victim.
func (c *BufCache) Insert(k BufKey) (b *Buf, victim *Buf) {
	if c.index[k] != nil {
		panic("vfs: Insert of resident block " + fmt.Sprint(k))
	}
	if c.lru.Len() >= c.Capacity {
		victim = c.evictLRU()
	}
	b = &Buf{Key: k}
	b.elem = c.lru.PushFront(b)
	c.index[k] = b
	vk := vnKey(k)
	c.chains[vk] = append(c.chains[vk], b)
	return b, victim
}

// evictLRU removes the least recently used buffer and returns it.
func (c *BufCache) evictLRU() *Buf {
	e := c.lru.Back()
	if e == nil {
		return nil
	}
	b := e.Value.(*Buf)
	c.remove(b)
	c.Stats.Evictions++
	return b
}

func (c *BufCache) remove(b *Buf) {
	c.lru.Remove(b.elem)
	delete(c.index, b.Key)
	vk := vnKey(b.Key)
	chain := c.chains[vk]
	for i, cb := range chain {
		if cb == b {
			c.chains[vk] = append(chain[:i], chain[i+1:]...)
			break
		}
	}
	if len(c.chains[vk]) == 0 {
		delete(c.chains, vk)
	}
}

// InvalidateVnode drops every buffer of the vnode, returning any dirty ones
// so the caller can decide whether to flush or discard them (cache purge on
// a server mtime change discards; unmount flushes).
func (c *BufCache) InvalidateVnode(vn, gen uint32) (dirty []*Buf) {
	vk := uint64(vn)<<32 | uint64(gen)
	chain := append([]*Buf(nil), c.chains[vk]...)
	for _, b := range chain {
		if b.Dirty {
			dirty = append(dirty, b)
		}
		c.remove(b)
	}
	return dirty
}

// DirtyBufs returns the vnode's dirty buffers in block order (for
// push-on-close and the 30-second update flush).
func (c *BufCache) DirtyBufs(vn, gen uint32) []*Buf {
	var out []*Buf
	for _, b := range c.chains[uint64(vn)<<32|uint64(gen)] {
		if b.Dirty {
			out = append(out, b)
		}
	}
	// Chains append in insertion order; sort by block number for
	// sequential writes.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Key.Block < out[j-1].Key.Block; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// VnodeBufs returns all resident buffers of a vnode.
func (c *BufCache) VnodeBufs(vn, gen uint32) []*Buf {
	return append([]*Buf(nil), c.chains[uint64(vn)<<32|uint64(gen)]...)
}

// AnyDirty reports whether any buffer in the cache is dirty.
func (c *BufCache) AnyDirty() bool {
	for e := c.lru.Front(); e != nil; e = e.Next() {
		if e.Value.(*Buf).Dirty {
			return true
		}
	}
	return false
}
