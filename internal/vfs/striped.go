package vfs

import (
	"sync"

	"renonfs/internal/lockstat"
	"renonfs/internal/metrics"
)

// Per-kind contention sites, shared by every cache instance in the process
// (the way mbuf.Stats is process-global): the scaling hunt wants "how much
// time do nfsds spend waiting on buf-cache stripes", not a per-server split.
var (
	bufSite  = lockstat.NewSite("vfs.bufcache")
	nameSite = lockstat.NewSite("vfs.namecache")
)

// Lock-striped fronts for the two VFS caches, used by the server core when
// it is dispatched from concurrent frontends (internal/nfsnet). Each stripe
// is an ordinary BufCache/NameCache behind its own mutex, and keys are
// routed by vnode (buffer cache) or by (dir, name) hash (name cache), so
// every per-vnode operation — chained lookups, invalidation, dirty scans —
// touches exactly one stripe. With a single stripe the behaviour (LRU order,
// eviction victims, stats) is bit-for-bit the legacy single-cache behaviour,
// which is what the simulator path uses to stay deterministic; the socket
// path asks for more stripes so the nfsd pool stops serializing on one lock.
//
// The stripe count is rounded down to a power of two for cheap masking, and
// the configured capacity is divided evenly among stripes. The linear-scan
// discipline (ChainedLookup=false, the Ultrix personality) inherently scans
// one global LRU list, so it is pinned to a single stripe — sharding it
// would change the very search cost the personality exists to model.

// StripedBufCache is a BufCache split into independently locked stripes.
type StripedBufCache struct {
	stripes []bufStripe
	mask    uint32
}

type bufStripe struct {
	mu sync.Mutex
	c  *BufCache
}

// roundStripes clamps n to [1, 64] and rounds down to a power of two.
func roundStripes(n int) int {
	if n < 1 {
		n = 1
	}
	if n > 64 {
		n = 64
	}
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// NewStripedBufCache returns a striped cache with the given total capacity.
// Linear-scan caches (chained=false) are forced to one stripe.
func NewStripedBufCache(capacity int, chained bool, stripes int) *StripedBufCache {
	if !chained {
		stripes = 1
	}
	n := roundStripes(stripes)
	per := capacity / n
	if per < 1 {
		per = 1
	}
	c := &StripedBufCache{stripes: make([]bufStripe, n), mask: uint32(n - 1)}
	for i := range c.stripes {
		c.stripes[i].c = NewBufCache(per, chained)
	}
	return c
}

// stripe routes a key by vnode so a vnode's buffers share one stripe.
func (c *StripedBufCache) stripe(vn, gen uint32) *bufStripe {
	h := vn*0x9e3779b1 ^ gen*0x85ebca77
	return &c.stripes[(h>>16^h)&c.mask]
}

// NumStripes reports the stripe count.
func (c *StripedBufCache) NumStripes() int { return len(c.stripes) }

// LookupOrReserve finds block k, or reserves a presence-only buffer for it,
// in one critical section — two nfsds missing on the same block must not
// both insert it (the legacy Lookup-then-Insert pair panics on the second).
// Stats accounting is identical to Lookup followed by Insert on a miss.
func (c *StripedBufCache) LookupOrReserve(k BufKey, sp *metrics.Span) (hit bool, scanned int) {
	st := c.stripe(k.Vnode, k.Gen)
	bufSite.Lock(&st.mu, sp)
	b, scanned := st.c.Lookup(k)
	if b == nil {
		st.c.Insert(k)
	}
	st.mu.Unlock()
	return b != nil, scanned
}

// Lookup probes for block k; semantics match BufCache.Lookup. The simulator
// path uses the split Lookup/Insert pair so the CPU charge (which parks the
// calling proc) lands between probe and reserve exactly where the legacy
// code put it; concurrent frontends use LookupOrReserve instead.
func (c *StripedBufCache) Lookup(k BufKey) (b *Buf, scanned int) {
	st := c.stripe(k.Vnode, k.Gen)
	bufSite.Lock(&st.mu, nil)
	b, scanned = st.c.Lookup(k)
	st.mu.Unlock()
	return b, scanned
}

// Insert reserves a buffer for k, which must not be resident.
func (c *StripedBufCache) Insert(k BufKey) {
	st := c.stripe(k.Vnode, k.Gen)
	bufSite.Lock(&st.mu, nil)
	st.c.Insert(k)
	st.mu.Unlock()
}

// Peek finds a resident buffer without LRU refresh or scan accounting.
func (c *StripedBufCache) Peek(k BufKey) *Buf {
	st := c.stripe(k.Vnode, k.Gen)
	bufSite.Lock(&st.mu, nil)
	b := st.c.Peek(k)
	st.mu.Unlock()
	return b
}

// EnsureResident makes k resident without LRU refresh or scan accounting
// (the write path: the just-written block is now cached). Equivalent to the
// legacy Peek-then-Insert pair, made atomic.
func (c *StripedBufCache) EnsureResident(k BufKey, sp *metrics.Span) {
	st := c.stripe(k.Vnode, k.Gen)
	bufSite.Lock(&st.mu, sp)
	if st.c.Peek(k) == nil {
		st.c.Insert(k)
	}
	st.mu.Unlock()
}

// InvalidateVnode drops every buffer of the vnode.
func (c *StripedBufCache) InvalidateVnode(vn, gen uint32) {
	st := c.stripe(vn, gen)
	bufSite.Lock(&st.mu, nil)
	st.c.InvalidateVnode(vn, gen)
	st.mu.Unlock()
}

// Len returns the number of resident buffers across all stripes.
func (c *StripedBufCache) Len() int {
	n := 0
	for i := range c.stripes {
		st := &c.stripes[i]
		st.mu.Lock()
		n += st.c.Len()
		st.mu.Unlock()
	}
	return n
}

// Stats aggregates the per-stripe counters.
func (c *StripedBufCache) Stats() CacheStats {
	var out CacheStats
	for i := range c.stripes {
		st := &c.stripes[i]
		st.mu.Lock()
		s := st.c.Stats
		st.mu.Unlock()
		out.Hits += s.Hits
		out.Misses += s.Misses
		out.Evictions += s.Evictions
		out.Scanned += s.Scanned
	}
	return out
}

// StripedNameCache is a NameCache split into independently locked stripes.
type StripedNameCache struct {
	stripes []ncStripe
	mask    uint64
}

type ncStripe struct {
	mu sync.Mutex
	c  *NameCache
}

// NewStripedNameCache returns a striped cache with Reno's defaults spread
// over the stripes.
func NewStripedNameCache(stripes int) *StripedNameCache {
	n := roundStripes(stripes)
	c := &StripedNameCache{stripes: make([]ncStripe, n), mask: uint64(n - 1)}
	per := DefaultNameCacheCap / n
	if per < 1 {
		per = 1
	}
	for i := range c.stripes {
		c.stripes[i].c = NewNameCache()
		c.stripes[i].c.Capacity = per
	}
	return c
}

// stripe routes by (dir, gen, name) hash — allocation-free FNV over the
// component, mixed with the directory identity.
func (c *StripedNameCache) stripe(dir, gen uint32, name string) *ncStripe {
	h := uint64(dir)*0x9e3779b1 ^ uint64(gen)*0x85ebca77
	for i := 0; i < len(name); i++ {
		h = h*1099511628211 ^ uint64(name[i])
	}
	return &c.stripes[(h>>32^h)&c.mask]
}

// NumStripes reports the stripe count.
func (c *StripedNameCache) NumStripes() int { return len(c.stripes) }

// SetEnabled toggles the cache (the appendix experiment flips it at run
// time).
func (c *StripedNameCache) SetEnabled(on bool) {
	for i := range c.stripes {
		st := &c.stripes[i]
		st.mu.Lock()
		st.c.Enabled = on
		st.mu.Unlock()
	}
}

// Enabled reports whether the cache is on. The flag only changes between
// runs (SetNameCache), so reading stripe 0 suffices.
func (c *StripedNameCache) Enabled() bool {
	st := &c.stripes[0]
	st.mu.Lock()
	on := st.c.Enabled
	st.mu.Unlock()
	return on
}

// Lookup consults the cache; semantics match NameCache.Lookup.
func (c *StripedNameCache) Lookup(dir, dgen uint32, name string, sp *metrics.Span) (vn, vgen uint32, neg, found bool) {
	st := c.stripe(dir, dgen, name)
	nameSite.Lock(&st.mu, sp)
	vn, vgen, neg, found = st.c.Lookup(dir, dgen, name)
	st.mu.Unlock()
	return vn, vgen, neg, found
}

// Enter caches a positive translation.
func (c *StripedNameCache) Enter(dir, dgen uint32, name string, vn, vgen uint32, sp *metrics.Span) {
	st := c.stripe(dir, dgen, name)
	nameSite.Lock(&st.mu, sp)
	st.c.Enter(dir, dgen, name, vn, vgen)
	st.mu.Unlock()
}

// EnterNegative caches known non-existence.
func (c *StripedNameCache) EnterNegative(dir, dgen uint32, name string, sp *metrics.Span) {
	st := c.stripe(dir, dgen, name)
	nameSite.Lock(&st.mu, sp)
	st.c.EnterNegative(dir, dgen, name)
	st.mu.Unlock()
}

// Remove drops one translation.
func (c *StripedNameCache) Remove(dir, dgen uint32, name string) {
	st := c.stripe(dir, dgen, name)
	nameSite.Lock(&st.mu, nil)
	st.c.Remove(dir, dgen, name)
	st.mu.Unlock()
}

// PurgeDir drops every translation under a directory. Entries of one
// directory spread across stripes (the name is part of the route), so every
// stripe is visited.
func (c *StripedNameCache) PurgeDir(dir, dgen uint32) {
	for i := range c.stripes {
		st := &c.stripes[i]
		st.mu.Lock()
		st.c.PurgeDir(dir, dgen)
		st.mu.Unlock()
	}
}

// PurgeVnode drops translations resolving to the vnode.
func (c *StripedNameCache) PurgeVnode(vn, vgen uint32) {
	for i := range c.stripes {
		st := &c.stripes[i]
		st.mu.Lock()
		st.c.PurgeVnode(vn, vgen)
		st.mu.Unlock()
	}
}

// Len returns the number of cached entries across all stripes.
func (c *StripedNameCache) Len() int {
	n := 0
	for i := range c.stripes {
		st := &c.stripes[i]
		st.mu.Lock()
		n += st.c.Len()
		st.mu.Unlock()
	}
	return n
}

// Stats aggregates the per-stripe counters.
func (c *StripedNameCache) Stats() NameCacheStats {
	var out NameCacheStats
	for i := range c.stripes {
		st := &c.stripes[i]
		st.mu.Lock()
		s := st.c.Stats
		st.mu.Unlock()
		out.Hits += s.Hits
		out.Misses += s.Misses
		out.TooLong += s.TooLong
		out.NegHits += s.NegHits
	}
	return out
}
