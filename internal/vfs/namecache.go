package vfs

import "container/list"

// DefaultNameCacheCap matches the scale of the 4.3BSD Reno kernel's
// name-cache (a few hundred entries on a small machine).
const DefaultNameCacheCap = 512

// RenoMaxNameLen is the longest component 4.3BSD Reno will cache (the
// appendix notes this is longer than the names Nhfsstone generates, which
// is why long benchmark names can defeat lesser caches).
const RenoMaxNameLen = 31

// NameCacheStats counts cache behaviour.
type NameCacheStats struct {
	Hits, Misses int
	TooLong      int // names rejected by the length limit
	NegHits      int // hits on cached non-existence
}

type ncKey struct {
	dir  uint32
	gen  uint32
	name string
}

type ncEntry struct {
	key  ncKey
	vn   uint32
	vgen uint32
	neg  bool // negative entry: name known absent
	elem *list.Element
}

// NameCache is the VFS name lookup cache: (directory, component) → vnode.
// §5 credits it with halving the Reno client's lookup RPC count (Table 3)
// and with part of the Reno server's lookup advantage (Graphs 8-9).
type NameCache struct {
	// Enabled gates the whole cache; a disabled cache misses always, which
	// is how the server-side experiment in the appendix is run.
	Enabled bool
	// MaxNameLen rejects long components (Reno: 31).
	MaxNameLen int
	// Capacity bounds the entry count (LRU beyond it).
	Capacity int

	entries map[ncKey]*ncEntry
	lru     *list.List
	Stats   NameCacheStats
}

// NewNameCache returns an enabled cache with Reno's defaults.
func NewNameCache() *NameCache {
	return &NameCache{
		Enabled:    true,
		MaxNameLen: RenoMaxNameLen,
		Capacity:   DefaultNameCacheCap,
		entries:    make(map[ncKey]*ncEntry),
		lru:        list.New(),
	}
}

// Len returns the number of cached entries.
func (nc *NameCache) Len() int { return nc.lru.Len() }

// Lookup consults the cache. found=false means a miss; found=true with
// neg=true means the name is cached as non-existent.
func (nc *NameCache) Lookup(dir, dgen uint32, name string) (vn, vgen uint32, neg, found bool) {
	if !nc.Enabled {
		nc.Stats.Misses++
		return 0, 0, false, false
	}
	if len(name) > nc.MaxNameLen {
		nc.Stats.TooLong++
		nc.Stats.Misses++
		return 0, 0, false, false
	}
	e := nc.entries[ncKey{dir, dgen, name}]
	if e == nil {
		nc.Stats.Misses++
		return 0, 0, false, false
	}
	nc.lru.MoveToFront(e.elem)
	nc.Stats.Hits++
	if e.neg {
		nc.Stats.NegHits++
		return 0, 0, true, true
	}
	return e.vn, e.vgen, false, true
}

// Enter caches a positive translation.
func (nc *NameCache) Enter(dir, dgen uint32, name string, vn, vgen uint32) {
	nc.enter(dir, dgen, name, vn, vgen, false)
}

// EnterNegative caches known non-existence (4.3BSD Reno caches negative
// lookups too).
func (nc *NameCache) EnterNegative(dir, dgen uint32, name string) {
	nc.enter(dir, dgen, name, 0, 0, true)
}

func (nc *NameCache) enter(dir, dgen uint32, name string, vn, vgen uint32, neg bool) {
	if !nc.Enabled || len(name) > nc.MaxNameLen {
		return
	}
	k := ncKey{dir, dgen, name}
	if e := nc.entries[k]; e != nil {
		e.vn, e.vgen, e.neg = vn, vgen, neg
		nc.lru.MoveToFront(e.elem)
		return
	}
	if nc.lru.Len() >= nc.Capacity {
		back := nc.lru.Back()
		old := back.Value.(*ncEntry)
		nc.lru.Remove(back)
		delete(nc.entries, old.key)
	}
	e := &ncEntry{key: k, vn: vn, vgen: vgen, neg: neg}
	e.elem = nc.lru.PushFront(e)
	nc.entries[k] = e
}

// Remove drops one translation (after REMOVE/RENAME of the name).
func (nc *NameCache) Remove(dir, dgen uint32, name string) {
	k := ncKey{dir, dgen, name}
	if e := nc.entries[k]; e != nil {
		nc.lru.Remove(e.elem)
		delete(nc.entries, k)
	}
}

// PurgeDir drops every translation under a directory (after its mtime
// changes unexpectedly).
func (nc *NameCache) PurgeDir(dir, dgen uint32) {
	for k, e := range nc.entries {
		if k.dir == dir && k.gen == dgen {
			nc.lru.Remove(e.elem)
			delete(nc.entries, k)
		}
	}
}

// PurgeVnode drops translations resolving to the vnode (after it is
// recycled).
func (nc *NameCache) PurgeVnode(vn, vgen uint32) {
	for k, e := range nc.entries {
		if !e.neg && e.vn == vn && e.vgen == vgen {
			nc.lru.Remove(e.elem)
			delete(nc.entries, k)
		}
	}
}

// Flush empties the cache.
func (nc *NameCache) Flush() {
	nc.entries = make(map[ncKey]*ncEntry)
	nc.lru.Init()
}
