package vfs

import (
	"bytes"
	"testing"
	"testing/quick"
)

func key(vn, blk uint32) BufKey { return BufKey{Vnode: vn, Gen: 1, Block: blk} }

func TestBufWriteTracksDirtyRegion(t *testing.T) {
	b := &Buf{Key: key(1, 0)}
	if b.Write(100, []byte("hello")) {
		t.Fatal("first write demanded a flush")
	}
	if !b.Dirty || b.DirtyOff != 100 || b.DirtyEnd != 105 {
		t.Fatalf("dirty region = [%d,%d)", b.DirtyOff, b.DirtyEnd)
	}
	// Contiguous extension.
	if b.Write(105, []byte(" world")) {
		t.Fatal("contiguous write demanded a flush")
	}
	if b.DirtyOff != 100 || b.DirtyEnd != 111 {
		t.Fatalf("dirty region = [%d,%d)", b.DirtyOff, b.DirtyEnd)
	}
	// Overlapping write extends left.
	if b.Write(90, bytes.Repeat([]byte{'x'}, 15)) {
		t.Fatal("overlapping write demanded a flush")
	}
	if b.DirtyOff != 90 || b.DirtyEnd != 111 {
		t.Fatalf("dirty region = [%d,%d)", b.DirtyOff, b.DirtyEnd)
	}
	if got := string(b.Data[90:111]); got != "xxxxxxxxxxxxxxx world" {
		t.Fatalf("data = %q", got)
	}
}

func TestBufDisjointWriteNeedsFlush(t *testing.T) {
	b := &Buf{Key: key(1, 0)}
	b.Write(0, []byte("start"))
	if !b.Write(4000, []byte("far away")) {
		t.Fatal("disjoint dirty write did not demand a flush")
	}
	// The buffer must be unchanged by the refused write.
	if b.DirtyEnd != 5 {
		t.Fatalf("dirty end = %d", b.DirtyEnd)
	}
	b.MarkClean()
	if b.Write(4000, []byte("far away")) {
		t.Fatal("write after flush still demanded a flush")
	}
	if b.DirtyOff != 4000 || b.DirtyEnd != 4008 {
		t.Fatalf("dirty region = [%d,%d)", b.DirtyOff, b.DirtyEnd)
	}
}

func TestBufNoPrereadForPartialWrite(t *testing.T) {
	// A fresh buffer accepts a mid-block write without any read: the valid
	// range tracks exactly what was written.
	b := &Buf{Key: key(1, 0)}
	if b.Write(1000, []byte("partial")) {
		t.Fatal("needed flush")
	}
	if b.ValidOff != 1000 || b.ValidEnd != 1007 {
		t.Fatalf("valid = [%d,%d)", b.ValidOff, b.ValidEnd)
	}
	if !b.Covers(1000, 1007) || b.Covers(0, 8) {
		t.Fatal("Covers wrong")
	}
}

func TestBufWriteBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := &Buf{Key: key(1, 0)}
	b.Write(BlockSize-2, []byte("overflow"))
}

func TestBufCacheHitMissLRU(t *testing.T) {
	c := NewBufCache(2, true)
	b1, v := c.Insert(key(1, 0))
	if v != nil {
		t.Fatal("victim on first insert")
	}
	b2, _ := c.Insert(key(1, 1))
	if got, _ := c.Lookup(key(1, 0)); got != b1 {
		t.Fatal("lookup missed resident block")
	}
	// Inserting a third evicts the LRU (1,1 — since (1,0) was refreshed).
	_, victim := c.Insert(key(2, 0))
	if victim != b2 {
		t.Fatalf("victim = %+v, want block (1,1)", victim)
	}
	if got, _ := c.Lookup(key(1, 1)); got != nil {
		t.Fatal("evicted block still resident")
	}
	if c.Stats.Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats.Evictions)
	}
}

func TestChainedLookupScansOnlyVnode(t *testing.T) {
	c := NewBufCache(100, true)
	for vn := uint32(1); vn <= 10; vn++ {
		for blk := uint32(0); blk < 8; blk++ {
			c.Insert(key(vn, blk))
		}
	}
	_, scanned := c.Lookup(key(5, 7))
	if scanned > 8 {
		t.Fatalf("chained lookup scanned %d buffers, want <= 8", scanned)
	}
}

func TestLinearLookupScansCache(t *testing.T) {
	c := NewBufCache(100, false)
	for vn := uint32(1); vn <= 10; vn++ {
		for blk := uint32(0); blk < 8; blk++ {
			c.Insert(key(vn, blk))
		}
	}
	// The last-inserted block is at the LRU front; look up the first one.
	_, scanned := c.Lookup(key(1, 0))
	if scanned < 50 {
		t.Fatalf("linear lookup scanned only %d buffers", scanned)
	}
}

func TestInvalidateVnodeReturnsDirty(t *testing.T) {
	c := NewBufCache(10, true)
	b0, _ := c.Insert(key(1, 0))
	b0.Write(0, []byte("dirty"))
	c.Insert(key(1, 1)) // clean
	b2, _ := c.Insert(key(1, 2))
	b2.Write(0, []byte("dirty too"))
	c.Insert(key(2, 0)) // other vnode

	dirty := c.InvalidateVnode(1, 1)
	if len(dirty) != 2 {
		t.Fatalf("dirty = %d bufs, want 2", len(dirty))
	}
	if c.Len() != 1 {
		t.Fatalf("cache len = %d, want 1 (other vnode only)", c.Len())
	}
	if b, _ := c.Lookup(key(2, 0)); b == nil {
		t.Fatal("other vnode's buffer lost")
	}
}

func TestDirtyBufsSorted(t *testing.T) {
	c := NewBufCache(10, true)
	for _, blk := range []uint32{3, 0, 7, 1} {
		b, _ := c.Insert(key(1, blk))
		b.Write(0, []byte{1})
	}
	cl, _ := c.Insert(key(1, 5)) // clean
	_ = cl
	dirty := c.DirtyBufs(1, 1)
	if len(dirty) != 4 {
		t.Fatalf("dirty = %d", len(dirty))
	}
	for i := 1; i < len(dirty); i++ {
		if dirty[i].Key.Block < dirty[i-1].Key.Block {
			t.Fatalf("not sorted: %v", dirty)
		}
	}
}

func TestBufCacheInsertDuplicatePanics(t *testing.T) {
	c := NewBufCache(4, true)
	c.Insert(key(1, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Insert(key(1, 0))
}

func TestBufCachePropertyResidencyConsistent(t *testing.T) {
	// Under arbitrary insert/lookup sequences, the index, LRU list and
	// per-vnode chains agree, and residency never exceeds capacity.
	f := func(ops []uint16) bool {
		c := NewBufCache(8, true)
		for _, op := range ops {
			vn := uint32(op % 5)
			blk := uint32((op >> 4) % 6)
			k := BufKey{Vnode: vn, Gen: 1, Block: blk}
			if b, _ := c.Lookup(k); b == nil {
				c.Insert(k)
			}
			if c.Len() > 8 {
				return false
			}
		}
		// Every chain member must be in the index and vice versa.
		n := 0
		for vn := uint32(0); vn < 5; vn++ {
			for _, b := range c.VnodeBufs(vn, 1) {
				if c.Peek(b.Key) != b {
					return false
				}
				n++
			}
		}
		return n == c.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNameCacheBasics(t *testing.T) {
	nc := NewNameCache()
	if _, _, _, found := nc.Lookup(1, 1, "foo.c"); found {
		t.Fatal("hit on empty cache")
	}
	nc.Enter(1, 1, "foo.c", 42, 7)
	vn, vgen, neg, found := nc.Lookup(1, 1, "foo.c")
	if !found || neg || vn != 42 || vgen != 7 {
		t.Fatalf("lookup = %d,%d,%v,%v", vn, vgen, neg, found)
	}
	if nc.Stats.Hits != 1 || nc.Stats.Misses != 1 {
		t.Fatalf("stats = %+v", nc.Stats)
	}
}

func TestNameCacheLongNamesRejected(t *testing.T) {
	nc := NewNameCache()
	long := "this-name-is-well-over-thirty-one-characters-long.c"
	nc.Enter(1, 1, long, 9, 1)
	if _, _, _, found := nc.Lookup(1, 1, long); found {
		t.Fatal("cached a name beyond the 31-char Reno limit")
	}
	if nc.Stats.TooLong == 0 {
		t.Fatal("TooLong not counted")
	}
}

func TestNameCacheNegativeEntries(t *testing.T) {
	nc := NewNameCache()
	nc.EnterNegative(1, 1, "no-such-file")
	_, _, neg, found := nc.Lookup(1, 1, "no-such-file")
	if !found || !neg {
		t.Fatalf("negative lookup = neg=%v found=%v", neg, found)
	}
	if nc.Stats.NegHits != 1 {
		t.Fatalf("NegHits = %d", nc.Stats.NegHits)
	}
}

func TestNameCacheDisabled(t *testing.T) {
	nc := NewNameCache()
	nc.Enter(1, 1, "a", 2, 1)
	nc.Enabled = false
	if _, _, _, found := nc.Lookup(1, 1, "a"); found {
		t.Fatal("disabled cache returned a hit")
	}
	nc.Enter(1, 1, "b", 3, 1)
	nc.Enabled = true
	if _, _, _, found := nc.Lookup(1, 1, "b"); found {
		t.Fatal("entry added while disabled")
	}
}

func TestNameCacheRemoveAndPurge(t *testing.T) {
	nc := NewNameCache()
	nc.Enter(1, 1, "a", 10, 1)
	nc.Enter(1, 1, "b", 11, 1)
	nc.Enter(2, 1, "c", 12, 1)
	nc.Remove(1, 1, "a")
	if _, _, _, found := nc.Lookup(1, 1, "a"); found {
		t.Fatal("removed entry found")
	}
	nc.PurgeDir(1, 1)
	if _, _, _, found := nc.Lookup(1, 1, "b"); found {
		t.Fatal("purged dir entry found")
	}
	if _, _, _, found := nc.Lookup(2, 1, "c"); !found {
		t.Fatal("unrelated entry lost")
	}
	nc.PurgeVnode(12, 1)
	if _, _, _, found := nc.Lookup(2, 1, "c"); found {
		t.Fatal("purged vnode entry found")
	}
}

func TestNameCacheLRUEviction(t *testing.T) {
	nc := NewNameCache()
	nc.Capacity = 3
	nc.Enter(1, 1, "a", 1, 1)
	nc.Enter(1, 1, "b", 2, 1)
	nc.Enter(1, 1, "c", 3, 1)
	nc.Lookup(1, 1, "a") // refresh a
	nc.Enter(1, 1, "d", 4, 1)
	if _, _, _, found := nc.Lookup(1, 1, "b"); found {
		t.Fatal("LRU entry not evicted")
	}
	if _, _, _, found := nc.Lookup(1, 1, "a"); !found {
		t.Fatal("refreshed entry evicted")
	}
	if nc.Len() != 3 {
		t.Fatalf("len = %d", nc.Len())
	}
}
