// Package memfs implements the server-local filesystem the NFS server
// exports: a UFS-like inode/directory structure held in memory, with an
// attached disk model (an RD53-class drive as a FIFO resource) so that
// operation latencies and the synchronous-write burden of NFS v2 — every
// write RPC costs 1-3 disk writes on the server (§5) — appear in virtual
// time. With a nil disk the filesystem is purely functional, which is how
// the real-socket server (internal/nfsnet) uses it.
//
// Locking: the filesystem is safe for concurrent callers (the nfsd pool of
// internal/nfsnet). A filesystem-level RWMutex orders namespace changes
// (create/remove/rename/link) against everything else; a per-inode RWMutex
// orders file-data writers against readers, so LOOKUP/GETATTR/READ of
// distinct — or even the same — file run in parallel; and a small per-inode
// metadata mutex covers the fields readers mutate (timestamps and the
// loaned-block marks), because ReadLoan updates both while holding only
// read locks. Lock order is fs.mu → Inode.mu → Inode.metaMu. No lock is
// ever held across a disk charge: under the simulator a disk operation
// parks the calling process, and a mutex held across a park would wedge the
// cooperative scheduler — so every method mutates under its locks first and
// pays the disk after (the pre-existing discipline), and the read paths
// split into a sizing phase, the disk charge, and a copy phase.
package memfs

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"renonfs/internal/lockstat"
	"renonfs/internal/mbuf"
	"renonfs/internal/metrics"
	"renonfs/internal/nfsproto"
	"renonfs/internal/sim"
	"renonfs/internal/vfs"
)

// Contention sites for the two memfs lock populations (process-global, like
// mbuf.Stats): the namespace RW lock and the per-inode data/meta locks —
// both named suspects in the multicore scaling hunt.
var (
	treeSite  = lockstat.NewSite("memfs.tree")
	inodeSite = lockstat.NewSite("memfs.inode")
)


// BlockSize is the filesystem block size (matches the NFS transfer size).
const BlockSize = vfs.BlockSize

// Errors mapped to NFS status codes by the server.
var (
	ErrNoEnt    = errors.New("memfs: no such file or directory")
	ErrExist    = errors.New("memfs: file exists")
	ErrNotDir   = errors.New("memfs: not a directory")
	ErrIsDir    = errors.New("memfs: is a directory")
	ErrNotEmpty = errors.New("memfs: directory not empty")
	ErrStale    = errors.New("memfs: stale file handle")
	ErrNoSpc    = errors.New("memfs: no space")
	ErrNameLen  = errors.New("memfs: name too long")
)

// Disk models one drive: a FIFO resource with per-operation seek/rotate
// latency plus a transfer rate.
type Disk struct {
	res      *sim.Resource
	seek     sim.Time
	perByte  float64 // ns per byte
	ReadOps  int
	WriteOps int
}

// RD53 parameters: ~27 ms average seek+rotate, ~1.2 MB/s sustained
// transfer.
const (
	rd53Seek    = 27 * 1e6 // ns
	rd53PerByte = 830.0    // ns/byte ≈ 1.2 MB/s
)

// NewRD53 returns an RD53-class disk bound to env.
func NewRD53(env *sim.Env, name string) *Disk {
	return &Disk{
		res:     sim.NewResource(env, name, 1),
		seek:    sim.Time(rd53Seek),
		perByte: rd53PerByte,
	}
}

// opTime returns the service time for one n-byte transfer.
func (d *Disk) opTime(n int) sim.Time {
	return d.seek + sim.Time(float64(n)*d.perByte)
}

// Read charges one read of n bytes.
func (d *Disk) Read(p *sim.Proc, n int) {
	if d == nil || p == nil {
		return
	}
	d.ReadOps++
	d.res.Use(p, d.opTime(n))
}

// Write charges one write of n bytes.
func (d *Disk) Write(p *sim.Proc, n int) {
	if d == nil || p == nil {
		return
	}
	d.WriteOps++
	d.res.Use(p, d.opTime(n))
}

// Utilization reports the disk's busy fraction.
func (d *Disk) Utilization() float64 {
	if d == nil {
		return 0
	}
	return d.res.Utilization()
}

// ResetStats restarts the utilization accounting window.
func (d *Disk) ResetStats() {
	if d != nil {
		d.res.ResetStats()
	}
}

// DirEnt is one directory entry.
type DirEnt struct {
	Name string
	Ino  uint32
}

// Inode is one file, directory or symlink.
type Inode struct {
	Ino   uint32
	Gen   uint32
	Type  nfsproto.FileType
	Mode  uint32
	UID   uint32
	GID   uint32
	Nlink uint32
	Size  uint32
	Atime nfsproto.Time
	Mtime nfsproto.Time
	Ctime nfsproto.Time

	blocks map[uint32][]byte // file data, BlockSize chunks
	// loaned marks blocks whose storage has been lent into a reply chain by
	// ReadLoan. A loaned block is immutable: writers replace it with a fresh
	// copy (writableBlock) rather than scribbling under the network code —
	// the block-replace discipline that makes BSD cluster loaning safe.
	loaned map[uint32]bool
	dir    []DirEnt // directory entries, sorted by name
	target string   // symlink target

	// mu orders file-data access: readers (ReadAt/ReadLoan/Attr) share it,
	// writers (WriteAt/WriteAtChain/Setattr) hold it exclusively.
	mu sync.RWMutex
	// metaMu covers timestamps and the loaned map, which read-side
	// operations mutate while holding only mu.RLock (every READ touches
	// Atime and marks its blocks loaned). Leaf lock: nothing is acquired
	// under it.
	metaMu sync.Mutex
}

// FS is the exported filesystem.
type FS struct {
	// mu is the namespace lock: directory structure, the inode table and
	// link counts change under the write lock; everything else (lookups,
	// handle resolution, attribute reads, data I/O) runs under the read
	// lock and proceeds in parallel.
	mu      sync.RWMutex
	FSID    uint32
	Disk    *Disk
	clock   func() nfsproto.Time
	inodes  map[uint32]*Inode
	nextIno uint32
	root    *Inode
	// Capacity in blocks, for STATFS.
	TotalBlocks uint32
	usedBlocks  atomic.Int64 // blocks in use, updated lock-free by writers
}

// New creates an empty filesystem. clock supplies file timestamps (wire it
// to the simulation clock); nil uses a counter so timestamps still advance.
func New(fsid uint32, disk *Disk, clock func() nfsproto.Time) *FS {
	fs := &FS{
		FSID:        fsid,
		Disk:        disk,
		clock:       clock,
		inodes:      make(map[uint32]*Inode),
		nextIno:     2, // 2 is the traditional root inode
		TotalBlocks: 65536,
	}
	if fs.clock == nil {
		var tick atomic.Uint32 // concurrent nfsds all advance file times
		fs.clock = func() nfsproto.Time {
			t := tick.Add(1)
			return nfsproto.Time{Sec: t / 100, USec: (t % 100) * 10000}
		}
	}
	fs.root = fs.newInode(nfsproto.TypeDir, 0755)
	fs.root.Nlink = 2
	return fs
}

func (fs *FS) newInode(typ nfsproto.FileType, mode uint32) *Inode {
	now := fs.clock()
	ino := &Inode{
		Ino: fs.nextIno, Gen: 1, Type: typ, Mode: mode,
		Nlink: 1, Atime: now, Mtime: now, Ctime: now,
	}
	if typ == nfsproto.TypeReg {
		ino.blocks = make(map[uint32][]byte)
	}
	fs.nextIno++
	fs.inodes[ino.Ino] = ino
	return ino
}

// Root returns the root directory inode.
func (fs *FS) Root() *Inode { return fs.root }

// Get resolves an inode number, checking the generation for staleness.
func (fs *FS) Get(ino, gen uint32) (*Inode, error) {
	treeSite.RLock(&fs.mu, nil)
	n := fs.inodes[ino]
	fs.mu.RUnlock()
	if n == nil || n.Gen != gen {
		return nil, ErrStale
	}
	return n, nil
}

// Attr fills NFS attributes for the inode.
func (fs *FS) Attr(n *Inode) nfsproto.Fattr {
	treeSite.RLock(&fs.mu, nil) // Nlink changes under the namespace lock
	inodeSite.RLock(&n.mu, nil)
	inodeSite.Lock(&n.metaMu, nil)
	a := nfsproto.Fattr{
		Type: n.Type, Mode: n.Mode, Nlink: n.Nlink, UID: n.UID, GID: n.GID,
		Size: n.Size, BlockSize: BlockSize,
		Blocks: (n.Size + BlockSize - 1) / BlockSize,
		FSID:   fs.FSID, FileID: n.Ino,
		Atime: n.Atime, Mtime: n.Mtime, Ctime: n.Ctime,
	}
	n.metaMu.Unlock()
	n.mu.RUnlock()
	fs.mu.RUnlock()
	return a
}

// FH builds the NFS file handle for an inode.
func (fs *FS) FH(n *Inode) nfsproto.FH {
	return nfsproto.MakeFH(fs.FSID, n.Ino, n.Gen)
}

// Resolve maps a file handle to an inode.
func (fs *FS) Resolve(fh nfsproto.FH) (*Inode, error) {
	fsid, ino, gen := fh.Parts()
	if fsid != fs.FSID {
		return nil, ErrStale
	}
	return fs.Get(ino, gen)
}

// findEntry returns the index of name in dir, or -1. The scan itself is
// free; the *server* charges CPU for it based on its cache discipline.
func findEntry(dir *Inode, name string) int {
	for i := range dir.dir {
		if dir.dir[i].Name == name {
			return i
		}
	}
	return -1
}

// Lookup finds name in dir.
func (fs *FS) Lookup(dir *Inode, name string) (*Inode, error) {
	if dir.Type != nfsproto.TypeDir {
		return nil, ErrNotDir
	}
	if name == "." {
		return dir, nil
	}
	if len(name) > nfsproto.MaxNameLen {
		return nil, ErrNameLen
	}
	treeSite.RLock(&fs.mu, nil)
	defer fs.mu.RUnlock()
	i := findEntry(dir, name)
	if i < 0 {
		return nil, ErrNoEnt
	}
	n := fs.inodes[dir.dir[i].Ino]
	if n == nil {
		return nil, ErrStale
	}
	return n, nil
}

// DirEntries returns a snapshot of the directory's entries (".." handling
// is left to the server; the root's parent is itself). The copy keeps the
// caller's iteration stable while other nfsds insert or remove entries.
func (fs *FS) DirEntries(dir *Inode) []DirEnt {
	treeSite.RLock(&fs.mu, nil)
	out := append([]DirEnt(nil), dir.dir...)
	fs.mu.RUnlock()
	return out
}

// NumDirBlocks returns how many directory blocks the directory occupies
// (~32 entries per block, the scale a real UFS directory block holds).
// Single-threaded callers only; concurrent ones go through FS.DirBlocks.
func NumDirBlocks(dir *Inode) int {
	n := (len(dir.dir) + 31) / 32
	if n == 0 {
		n = 1
	}
	return n
}

// DirBlocks is NumDirBlocks under the namespace lock.
func (fs *FS) DirBlocks(dir *Inode) int {
	treeSite.RLock(&fs.mu, nil)
	n := NumDirBlocks(dir)
	fs.mu.RUnlock()
	return n
}

func (fs *FS) touch(n *Inode, mtime bool) {
	now := fs.clock()
	inodeSite.Lock(&n.metaMu, nil)
	n.Atime = now
	if mtime {
		n.Mtime = now
		n.Ctime = now
	}
	n.metaMu.Unlock()
}

// insertEntry adds an entry keeping the list sorted.
func insertEntry(dir *Inode, e DirEnt) {
	i := sort.Search(len(dir.dir), func(i int) bool { return dir.dir[i].Name >= e.Name })
	dir.dir = append(dir.dir, DirEnt{})
	copy(dir.dir[i+1:], dir.dir[i:])
	dir.dir[i] = e
}

// Create makes a regular file. The disk pays a directory write plus an
// inode write (synchronously, per NFS statelessness).
func (fs *FS) Create(p *sim.Proc, dir *Inode, name string, mode uint32) (*Inode, error) {
	if dir.Type != nfsproto.TypeDir {
		return nil, ErrNotDir
	}
	if len(name) > nfsproto.MaxNameLen {
		return nil, ErrNameLen
	}
	treeSite.WLock(&fs.mu, nil)
	if findEntry(dir, name) >= 0 {
		fs.mu.Unlock()
		return nil, ErrExist
	}
	n := fs.newInode(nfsproto.TypeReg, mode)
	insertEntry(dir, DirEnt{name, n.Ino})
	fs.touch(dir, true)
	fs.mu.Unlock()
	fs.Disk.Write(p, BlockSize) // directory block
	fs.Disk.Write(p, 512)       // inode
	return n, nil
}

// Mkdir makes a directory.
func (fs *FS) Mkdir(p *sim.Proc, dir *Inode, name string, mode uint32) (*Inode, error) {
	if dir.Type != nfsproto.TypeDir {
		return nil, ErrNotDir
	}
	if len(name) > nfsproto.MaxNameLen {
		return nil, ErrNameLen
	}
	treeSite.WLock(&fs.mu, nil)
	if findEntry(dir, name) >= 0 {
		fs.mu.Unlock()
		return nil, ErrExist
	}
	n := fs.newInode(nfsproto.TypeDir, mode)
	n.Nlink = 2
	dir.Nlink++
	insertEntry(dir, DirEnt{name, n.Ino})
	fs.touch(dir, true)
	fs.mu.Unlock()
	fs.Disk.Write(p, BlockSize)
	fs.Disk.Write(p, 512)
	return n, nil
}

// Symlink makes a symbolic link.
func (fs *FS) Symlink(p *sim.Proc, dir *Inode, name, target string, mode uint32) (*Inode, error) {
	if dir.Type != nfsproto.TypeDir {
		return nil, ErrNotDir
	}
	treeSite.WLock(&fs.mu, nil)
	if findEntry(dir, name) >= 0 {
		fs.mu.Unlock()
		return nil, ErrExist
	}
	n := fs.newInode(nfsproto.TypeLnk, mode)
	n.target = target
	n.Size = uint32(len(target))
	insertEntry(dir, DirEnt{name, n.Ino})
	fs.touch(dir, true)
	fs.mu.Unlock()
	fs.Disk.Write(p, BlockSize)
	fs.Disk.Write(p, 512)
	return n, nil
}

// Readlink returns a symlink's target.
func (fs *FS) Readlink(n *Inode) (string, error) {
	if n.Type != nfsproto.TypeLnk {
		return "", ErrNoEnt
	}
	return n.target, nil
}

// Remove unlinks a file or symlink.
func (fs *FS) Remove(p *sim.Proc, dir *Inode, name string) error {
	treeSite.WLock(&fs.mu, nil)
	i := findEntry(dir, name)
	if i < 0 {
		fs.mu.Unlock()
		return ErrNoEnt
	}
	n := fs.inodes[dir.dir[i].Ino]
	if n != nil && n.Type == nfsproto.TypeDir {
		fs.mu.Unlock()
		return ErrIsDir
	}
	dir.dir = append(dir.dir[:i], dir.dir[i+1:]...)
	fs.touch(dir, true)
	if n != nil {
		n.Nlink--
		if n.Nlink == 0 {
			fs.freeInode(n)
		}
	}
	fs.mu.Unlock()
	fs.Disk.Write(p, BlockSize)
	fs.Disk.Write(p, 512)
	return nil
}

// Rmdir removes an empty directory.
func (fs *FS) Rmdir(p *sim.Proc, dir *Inode, name string) error {
	treeSite.WLock(&fs.mu, nil)
	i := findEntry(dir, name)
	if i < 0 {
		fs.mu.Unlock()
		return ErrNoEnt
	}
	n := fs.inodes[dir.dir[i].Ino]
	if n == nil || n.Type != nfsproto.TypeDir {
		fs.mu.Unlock()
		return ErrNotDir
	}
	if len(n.dir) != 0 {
		fs.mu.Unlock()
		return ErrNotEmpty
	}
	dir.dir = append(dir.dir[:i], dir.dir[i+1:]...)
	dir.Nlink--
	fs.touch(dir, true)
	fs.freeInode(n)
	fs.mu.Unlock()
	fs.Disk.Write(p, BlockSize)
	fs.Disk.Write(p, 512)
	return nil
}

// freeInode runs under fs.mu (write). The inode lock orders the Size read
// against a writer still streaming into the now-unlinked file.
func (fs *FS) freeInode(n *Inode) {
	inodeSite.RLock(&n.mu, nil)
	size := n.Size
	n.mu.RUnlock()
	fs.usedBlocks.Add(-int64((size + BlockSize - 1) / BlockSize))
	delete(fs.inodes, n.Ino)
}

// Rename moves an entry. Directories may be renamed only within the same
// parent (sufficient for the benchmarks).
func (fs *FS) Rename(p *sim.Proc, from *Inode, fromName string, to *Inode, toName string) error {
	treeSite.WLock(&fs.mu, nil)
	i := findEntry(from, fromName)
	if i < 0 {
		fs.mu.Unlock()
		return ErrNoEnt
	}
	if from == to && fromName == toName {
		fs.mu.Unlock()
		return nil // renaming onto itself is a no-op, per POSIX
	}
	ent := from.dir[i]
	if j := findEntry(to, toName); j >= 0 {
		// Target exists: replace it (files only).
		tn := fs.inodes[to.dir[j].Ino]
		if tn != nil && tn.Type == nfsproto.TypeDir {
			fs.mu.Unlock()
			return ErrIsDir
		}
		if tn != nil {
			tn.Nlink--
			if tn.Nlink == 0 {
				fs.freeInode(tn)
			}
		}
		to.dir = append(to.dir[:j], to.dir[j+1:]...)
		if to == from && j < i {
			i--
		}
	}
	from.dir = append(from.dir[:i], from.dir[i+1:]...)
	insertEntry(to, DirEnt{toName, ent.Ino})
	fs.touch(from, true)
	if to != from {
		fs.touch(to, true)
	}
	fs.mu.Unlock()
	fs.Disk.Write(p, BlockSize)
	fs.Disk.Write(p, BlockSize)
	return nil
}

// Link makes a hard link.
func (fs *FS) Link(p *sim.Proc, n *Inode, dir *Inode, name string) error {
	if dir.Type != nfsproto.TypeDir {
		return ErrNotDir
	}
	if n.Type == nfsproto.TypeDir {
		return ErrIsDir
	}
	treeSite.WLock(&fs.mu, nil)
	if findEntry(dir, name) >= 0 {
		fs.mu.Unlock()
		return ErrExist
	}
	insertEntry(dir, DirEnt{name, n.Ino})
	n.Nlink++
	fs.touch(dir, true)
	fs.mu.Unlock()
	fs.Disk.Write(p, BlockSize)
	fs.Disk.Write(p, 512)
	return nil
}

// Setattr applies settable attributes; NoValue fields are skipped.
func (fs *FS) Setattr(p *sim.Proc, n *Inode, s nfsproto.Sattr) {
	inodeSite.WLock(&n.mu, nil)
	if s.Mode != nfsproto.NoValue {
		n.Mode = s.Mode
	}
	if s.UID != nfsproto.NoValue {
		n.UID = s.UID
	}
	if s.GID != nfsproto.NoValue {
		n.GID = s.GID
	}
	if s.Size != nfsproto.NoValue {
		fs.truncate(n, s.Size)
	}
	now := fs.clock() // the clock is park-free (atomic counter or sim time)
	inodeSite.Lock(&n.metaMu, nil)
	if s.Atime.Sec != nfsproto.NoValue {
		n.Atime = s.Atime
	}
	if s.Mtime.Sec != nfsproto.NoValue {
		n.Mtime = s.Mtime
	}
	n.Ctime = now
	n.metaMu.Unlock()
	n.mu.Unlock()
	fs.Disk.Write(p, 512)
}

// truncate runs under n.mu (write).
func (fs *FS) truncate(n *Inode, size uint32) {
	if n.Type != nfsproto.TypeReg {
		return
	}
	oldBlocks := (n.Size + BlockSize - 1) / BlockSize
	newBlocks := (size + BlockSize - 1) / BlockSize
	for b := newBlocks; b < oldBlocks; b++ {
		delete(n.blocks, b)
		delete(n.loaned, b)
	}
	if size < n.Size && size%BlockSize != 0 {
		if b := size / BlockSize; n.blocks[b] != nil {
			blk := fs.writableBlock(n, b)
			for i := size % BlockSize; i < BlockSize; i++ {
				blk[i] = 0
			}
		}
	}
	fs.usedBlocks.Add(int64(newBlocks) - int64(oldBlocks))
	n.Size = size
	mtime := fs.clock()
	inodeSite.Lock(&n.metaMu, nil)
	n.Mtime = mtime
	n.metaMu.Unlock()
}

// ReadAt reads up to len(dst) bytes at off; short reads happen at EOF.
// cached=false charges a disk read. The size is fixed before the disk
// charge (which may park) and the copy runs after it, both under the read
// lock — so readers of one file proceed in parallel with each other.
func (fs *FS) ReadAt(p *sim.Proc, n *Inode, off uint32, dst []byte, cached bool) (int, error) {
	if n.Type == nfsproto.TypeDir {
		return 0, ErrIsDir
	}
	inodeSite.RLock(&n.mu, nil)
	size := n.Size
	n.mu.RUnlock()
	if off >= size {
		return 0, nil
	}
	want := uint32(len(dst))
	if off+want > size {
		want = size - off
	}
	if !cached {
		fs.Disk.Read(p, int(want)) // parks under the simulator; no lock held
	}
	inodeSite.RLock(&n.mu, nil)
	got := uint32(0)
	for got < want {
		b := (off + got) / BlockSize
		bo := (off + got) % BlockSize
		nn := BlockSize - bo
		if nn > want-got {
			nn = want - got
		}
		blk := n.blocks[b]
		if blk == nil {
			// Hole: zeros.
			for i := uint32(0); i < nn; i++ {
				dst[got+i] = 0
			}
		} else {
			copy(dst[got:got+nn], blk[bo:bo+nn])
		}
		got += nn
	}
	n.mu.RUnlock()
	fs.touch(n, false)
	return int(got), nil
}

// zeroBlock backs holes in loaned reads: a shared, never-written page of
// zeros every hole can reference without allocating.
var zeroBlock [BlockSize]byte

// ReadLoan reads up to count bytes at off by loaning file-block storage
// directly into chain c (mbuf.Chain.AppendExt) — no copy. The loaned blocks
// are marked so a later write replaces rather than mutates them
// (writableBlock); holes reference the shared zero page. Returns the number
// of bytes appended; short reads happen at EOF. cached=false charges a disk
// read, as in ReadAt.
func (fs *FS) ReadLoan(p *sim.Proc, n *Inode, off, count uint32, cached bool, c *mbuf.Chain, sp *metrics.Span) (int, error) {
	if n.Type == nfsproto.TypeDir {
		return 0, ErrIsDir
	}
	inodeSite.RLock(&n.mu, sp)
	size := n.Size
	n.mu.RUnlock()
	if off >= size {
		return 0, nil
	}
	want := count
	if off+want > size {
		want = size - off
	}
	if !cached {
		fs.Disk.Read(p, int(want)) // parks under the simulator; no lock held
	}
	inodeSite.RLock(&n.mu, sp)
	got := uint32(0)
	for got < want {
		b := (off + got) / BlockSize
		bo := (off + got) % BlockSize
		nn := uint32(BlockSize) - bo
		if nn > want-got {
			nn = want - got
		}
		blk := n.blocks[b]
		if blk == nil {
			// Hole: loan the shared zero page (no loan mark needed — a
			// write allocates a fresh block, never touches zeroBlock).
			c.AppendExt(zeroBlock[bo : bo+nn])
		} else {
			c.AppendExt(blk[bo : bo+nn])
			// Loan marks are written under the read lock (parallel READs of
			// one file), so they need the leaf mutex; writableBlock reads
			// them under the write lock, which the RWMutex orders after us.
			inodeSite.Lock(&n.metaMu, sp)
			if n.loaned == nil {
				n.loaned = make(map[uint32]bool)
			}
			n.loaned[b] = true
			n.metaMu.Unlock()
		}
		got += nn
	}
	n.mu.RUnlock()
	fs.touch(n, false)
	return int(got), nil
}

// writableBlock returns block b of n, safe to mutate: allocating it if the
// file has a hole there, and replacing it with a private copy first if its
// storage is out on loan to a reply chain (copy-on-write). The old storage
// stays behind with the chains referencing it. Runs under n.mu (write),
// which orders it after every ReadLoan that set a loan mark.
func (fs *FS) writableBlock(n *Inode, b uint32) []byte {
	blk := n.blocks[b]
	if blk == nil {
		blk = make([]byte, BlockSize)
		n.blocks[b] = blk
		fs.usedBlocks.Add(1)
		return blk
	}
	if n.loaned[b] {
		fresh := make([]byte, BlockSize)
		copy(fresh, blk)
		mbuf.Stats.CopiedBytes.Add(BlockSize)
		n.blocks[b] = fresh
		delete(n.loaned, b)
		return fresh
	}
	return blk
}

// WriteAt writes src at off, growing the file as needed. diskWrites charges
// that many synchronous disk operations (NFS v2 demands the data and
// metadata be stable before the reply; §5 counts 1-3 per write RPC).
func (fs *FS) WriteAt(p *sim.Proc, n *Inode, off uint32, src []byte, diskWrites int) error {
	if n.Type == nfsproto.TypeDir {
		return ErrIsDir
	}
	if int(off)+len(src) > int(fs.TotalBlocks)*BlockSize {
		return ErrNoSpc
	}
	inodeSite.WLock(&n.mu, nil)
	done := uint32(0)
	for done < uint32(len(src)) {
		b := (off + done) / BlockSize
		bo := (off + done) % BlockSize
		nn := uint32(BlockSize) - bo
		if nn > uint32(len(src))-done {
			nn = uint32(len(src)) - done
		}
		blk := fs.writableBlock(n, b)
		copy(blk[bo:], src[done:done+nn])
		done += nn
	}
	if off+done > n.Size {
		n.Size = off + done
	}
	n.mu.Unlock()
	fs.touch(n, true)
	fs.chargeWrite(p, len(src), diskWrites)
	return nil
}

// WriteAtChain writes the contents of src at off without linearizing it: the
// payload flows segment by segment from the request chain (a zero-copy view
// of the wire data) straight into file blocks — the buffer-cache side of the
// paper's copy-avoidance path. Disk-charge semantics match WriteAt.
func (fs *FS) WriteAtChain(p *sim.Proc, n *Inode, off uint32, src *mbuf.Chain, diskWrites int, sp *metrics.Span) error {
	if n.Type == nfsproto.TypeDir {
		return ErrIsDir
	}
	total := src.Len()
	if int(off)+total > int(fs.TotalBlocks)*BlockSize {
		return ErrNoSpc
	}
	inodeSite.WLock(&n.mu, sp)
	pos := off
	src.ForEach(func(seg []byte) {
		for len(seg) > 0 {
			b := pos / BlockSize
			bo := pos % BlockSize
			nn := int(uint32(BlockSize) - bo)
			if nn > len(seg) {
				nn = len(seg)
			}
			blk := fs.writableBlock(n, b)
			copy(blk[bo:], seg[:nn])
			seg = seg[nn:]
			pos += uint32(nn)
		}
	})
	if pos > n.Size {
		n.Size = pos
	}
	n.mu.Unlock()
	fs.touch(n, true)
	fs.chargeWrite(p, total, diskWrites)
	return nil
}

// chargeWrite charges diskWrites synchronous disk ops for an n-byte write:
// the data itself first, then 512-byte inode/indirect updates.
func (fs *FS) chargeWrite(p *sim.Proc, n, diskWrites int) {
	for i := 0; i < diskWrites; i++ {
		sz := n
		if i > 0 {
			sz = 512
		}
		fs.Disk.Write(p, sz)
	}
}

// Statfs reports filesystem capacity.
func (fs *FS) Statfs() nfsproto.StatfsRes {
	free := fs.TotalBlocks - uint32(fs.usedBlocks.Load())
	return nfsproto.StatfsRes{
		Status: nfsproto.OK,
		TSize:  nfsproto.MaxData,
		BSize:  BlockSize,
		Blocks: fs.TotalBlocks,
		BFree:  free,
		BAvail: free,
	}
}

// NumInodes returns the live inode count.
func (fs *FS) NumInodes() int {
	treeSite.RLock(&fs.mu, nil)
	n := len(fs.inodes)
	fs.mu.RUnlock()
	return n
}

// String summarizes the filesystem for debugging.
func (fs *FS) String() string {
	return fmt.Sprintf("memfs{fsid=%d inodes=%d used=%d blocks}", fs.FSID, fs.NumInodes(), fs.usedBlocks.Load())
}
