package memfs

import (
	"fmt"
	"math/rand"
	"testing"

	"renonfs/internal/nfsproto"
)

// TestRandomizedTreeOpsAgainstModel drives random namespace operations and
// checks the filesystem against a shadow model: name → kind, link counts,
// and inode accounting.
func TestRandomizedTreeOpsAgainstModel(t *testing.T) {
	type entry struct {
		isDir bool
		links int // shadow link count for files
	}
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		fs := New(1, nil, nil)
		root := fs.Root()
		// All operations happen in one directory plus one subdirectory to
		// keep the model simple while still exercising every code path.
		sub, err := fs.Mkdir(nil, root, "sub", 0755)
		if err != nil {
			t.Fatal(err)
		}
		dirs := []*Inode{root, sub}
		shadow := []map[string]*entry{{"sub": {isDir: true}}, {}}

		name := func() string { return fmt.Sprintf("n%02d", rng.Intn(12)) }
		for step := 0; step < 400; step++ {
			di := rng.Intn(2)
			d, sh := dirs[di], shadow[di]
			nm := name()
			switch rng.Intn(6) {
			case 0: // create file
				_, err := fs.Create(nil, d, nm, 0644)
				if sh[nm] != nil {
					if err != ErrExist {
						t.Fatalf("step %d: create over %q = %v, want ErrExist", step, nm, err)
					}
				} else {
					if err != nil {
						t.Fatalf("step %d: create %q: %v", step, nm, err)
					}
					sh[nm] = &entry{links: 1}
				}
			case 1: // mkdir
				_, err := fs.Mkdir(nil, d, nm, 0755)
				if sh[nm] != nil {
					if err != ErrExist {
						t.Fatalf("step %d: mkdir over %q = %v", step, nm, err)
					}
				} else if err != nil {
					t.Fatalf("step %d: mkdir %q: %v", step, nm, err)
				} else {
					sh[nm] = &entry{isDir: true}
				}
			case 2: // remove file
				err := fs.Remove(nil, d, nm)
				switch {
				case sh[nm] == nil:
					if err != ErrNoEnt {
						t.Fatalf("step %d: remove missing %q = %v", step, nm, err)
					}
				case sh[nm].isDir:
					if err != ErrIsDir {
						t.Fatalf("step %d: remove dir %q = %v", step, nm, err)
					}
				default:
					if err != nil {
						t.Fatalf("step %d: remove %q: %v", step, nm, err)
					}
					delete(sh, nm)
				}
			case 3: // rmdir
				err := fs.Rmdir(nil, d, nm)
				switch {
				case sh[nm] == nil:
					if err != ErrNoEnt {
						t.Fatalf("step %d: rmdir missing %q = %v", step, nm, err)
					}
				case !sh[nm].isDir:
					if err != ErrNotDir {
						t.Fatalf("step %d: rmdir file %q = %v", step, nm, err)
					}
				default:
					// May be non-empty (root's "sub" or a dir with entries).
					n, _ := fs.Lookup(d, nm)
					if n != nil && len(fs.DirEntries(n)) > 0 {
						if err != ErrNotEmpty {
							t.Fatalf("step %d: rmdir non-empty %q = %v", step, nm, err)
						}
					} else if err == nil {
						delete(sh, nm)
					}
				}
			case 4: // rename within the directory
				dst := name()
				err := fs.Rename(nil, d, nm, d, dst)
				src := sh[nm]
				tgt := sh[dst]
				switch {
				case src == nil:
					if err != ErrNoEnt {
						t.Fatalf("step %d: rename missing %q = %v", step, nm, err)
					}
				case nm == dst:
					if err != nil {
						t.Fatalf("step %d: self-rename %q = %v, want nil", step, nm, err)
					}
				case tgt != nil && tgt.isDir:
					if err != ErrIsDir {
						t.Fatalf("step %d: rename onto dir %q = %v", step, dst, err)
					}
				default:
					if err != nil {
						t.Fatalf("step %d: rename %q->%q: %v", step, nm, dst, err)
					}
					delete(sh, nm)
					sh[dst] = src
				}
			case 5: // lookup agrees with the model
				n, err := fs.Lookup(d, nm)
				if sh[nm] == nil {
					if err != ErrNoEnt {
						t.Fatalf("step %d: lookup missing %q = %v", step, nm, err)
					}
				} else if err != nil {
					t.Fatalf("step %d: lookup %q: %v", step, nm, err)
				} else if (n.Type == nfsproto.TypeDir) != sh[nm].isDir {
					t.Fatalf("step %d: %q kind mismatch", step, nm)
				}
			}
		}
		// Final sweep: the directory listings match the shadow exactly.
		for di, d := range dirs {
			ents := fs.DirEntries(d)
			if len(ents) != len(shadow[di]) {
				t.Fatalf("trial %d: dir %d has %d entries, model %d", trial, di, len(ents), len(shadow[di]))
			}
			for _, e := range ents {
				if shadow[di][e.Name] == nil {
					t.Fatalf("trial %d: unexpected entry %q", trial, e.Name)
				}
			}
		}
		// Inode accounting: live inodes == root + reachable entries.
		want := 1
		for _, sh := range shadow {
			want += len(sh)
		}
		if fs.NumInodes() != want {
			t.Fatalf("trial %d: inodes = %d, model %d (leak or double-free)", trial, fs.NumInodes(), want)
		}
	}
}
