package memfs

import (
	"fmt"
	"sync"
	"testing"

	"renonfs/internal/mbuf"
	"renonfs/internal/nfsproto"
)

// Concurrent readers, writers and namespace churn on one filesystem: the
// per-file RW locking must keep -race quiet while the loaned-block COW
// discipline keeps every reply chain's bytes stable. Run with -race.
func TestConcurrentReadWriteNamespace(t *testing.T) {
	fs := New(1, nil, nil)
	f, err := fs.Create(nil, fs.Root(), "shared", 0644)
	if err != nil {
		t.Fatal(err)
	}
	pattern := make([]byte, 2*BlockSize)
	for i := range pattern {
		pattern[i] = byte(i % 251)
	}
	if err := fs.WriteAt(nil, f, 0, pattern, 0); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Loaning readers: every loaned chain must linearize to exactly the
	// bytes that were on loan — writers replace blocks, never mutate them.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c := &mbuf.Chain{}
				got, err := fs.ReadLoan(nil, f, 0, BlockSize, true, c, nil)
				if err != nil {
					t.Errorf("ReadLoan: %v", err)
					c.Free()
					return
				}
				b := c.Bytes()
				if len(b) != got {
					t.Errorf("loan len %d != got %d", len(b), got)
				}
				// The first byte tells which generation of the block was
				// loaned (original pattern or a writer's 0xAA fill); the
				// whole view must be that one generation, never a mix.
				for j := 0; j < got; j += 997 {
					want := byte(j % 251)
					if b[0] == 0xAA {
						want = 0xAA
					}
					if b[j] != want {
						t.Errorf("torn loan at %d: got %#x want %#x", j, b[j], want)
						break
					}
				}
				c.Free()
			}
		}()
	}

	// Writers: rewrite block 0 (forcing COW against outstanding loans) and
	// append at the tail.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			blk := make([]byte, BlockSize)
			for i := range blk {
				blk[i] = 0xAA
			}
			for i := 0; i < 300; i++ {
				if err := fs.WriteAt(nil, f, 0, blk, 0); err != nil {
					t.Errorf("WriteAt: %v", err)
					return
				}
				if err := fs.WriteAt(nil, f, uint32(2+seed)*BlockSize, blk[:512], 0); err != nil {
					t.Errorf("WriteAt tail: %v", err)
					return
				}
				fs.Attr(f)
			}
		}(w)
	}

	// Namespace churn in parallel with the data traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			name := fmt.Sprintf("churn%d", i%8)
			if _, err := fs.Create(nil, fs.Root(), name, 0644); err != nil && err != ErrExist {
				t.Errorf("Create: %v", err)
				return
			}
			fs.Lookup(fs.Root(), name)
			fs.DirEntries(fs.Root())
			fs.DirBlocks(fs.Root())
			if i%3 == 0 {
				fs.Remove(nil, fs.Root(), name)
			}
			fs.Statfs()
		}
	}()

	// Setattr truncation against the readers/writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			tr := nfsproto.NewSattr()
			tr.Size = uint32(2 * BlockSize)
			fs.Setattr(nil, f, tr)
		}
		close(stop)
	}()

	wg.Wait()
}
