package memfs

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"renonfs/internal/nfsproto"
	"renonfs/internal/sim"
)

func newFS() *FS { return New(1, nil, nil) }

func TestCreateLookupRemove(t *testing.T) {
	fs := newFS()
	root := fs.Root()
	f, err := fs.Create(nil, root, "hello.c", 0644)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs.Lookup(root, "hello.c")
	if err != nil || got != f {
		t.Fatalf("lookup = %v, %v", got, err)
	}
	if _, err := fs.Create(nil, root, "hello.c", 0644); err != ErrExist {
		t.Fatalf("duplicate create = %v", err)
	}
	if err := fs.Remove(nil, root, "hello.c"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup(root, "hello.c"); err != ErrNoEnt {
		t.Fatalf("lookup after remove = %v", err)
	}
	if fs.NumInodes() != 1 {
		t.Fatalf("inodes = %d, want 1 (root)", fs.NumInodes())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create(nil, fs.Root(), "data", 0644)
	payload := make([]byte, 20000)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	if err := fs.WriteAt(nil, f, 0, payload, 2); err != nil {
		t.Fatal(err)
	}
	if f.Size != 20000 {
		t.Fatalf("size = %d", f.Size)
	}
	dst := make([]byte, 20000)
	n, err := fs.ReadAt(nil, f, 0, dst, true)
	if err != nil || n != 20000 {
		t.Fatalf("read = %d, %v", n, err)
	}
	if !bytes.Equal(dst, payload) {
		t.Fatal("data corrupted")
	}
}

func TestReadAtEOFAndHoles(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create(nil, fs.Root(), "sparse", 0644)
	fs.WriteAt(nil, f, 3*BlockSize, []byte("end"), 1)
	if f.Size != 3*BlockSize+3 {
		t.Fatalf("size = %d", f.Size)
	}
	// The hole reads as zeros.
	dst := make([]byte, 100)
	n, _ := fs.ReadAt(nil, f, BlockSize, dst, true)
	if n != 100 {
		t.Fatalf("hole read = %d", n)
	}
	for _, b := range dst {
		if b != 0 {
			t.Fatal("hole not zero")
		}
	}
	// Reads past EOF are empty; reads crossing EOF are short.
	if n, _ := fs.ReadAt(nil, f, f.Size+10, dst, true); n != 0 {
		t.Fatalf("read past EOF = %d", n)
	}
	if n, _ := fs.ReadAt(nil, f, f.Size-2, dst, true); n != 2 {
		t.Fatalf("read across EOF = %d", n)
	}
}

func TestWriteReadProperty(t *testing.T) {
	f := func(chunks [][]byte, offs []uint16) bool {
		fs := newFS()
		fi, _ := fs.Create(nil, fs.Root(), "f", 0644)
		shadow := make([]byte, 1<<17)
		maxEnd := uint32(0)
		for i, ch := range chunks {
			if len(ch) == 0 || i >= len(offs) {
				continue
			}
			off := uint32(offs[i]) % (1 << 16)
			if len(ch) > 4096 {
				ch = ch[:4096]
			}
			if err := fs.WriteAt(nil, fi, off, ch, 1); err != nil {
				return false
			}
			copy(shadow[off:], ch)
			if off+uint32(len(ch)) > maxEnd {
				maxEnd = off + uint32(len(ch))
			}
		}
		if fi.Size != maxEnd {
			return false
		}
		dst := make([]byte, maxEnd)
		n, err := fs.ReadAt(nil, fi, 0, dst, true)
		if err != nil || uint32(n) != maxEnd {
			return false
		}
		return bytes.Equal(dst, shadow[:maxEnd])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMkdirRmdir(t *testing.T) {
	fs := newFS()
	d, err := fs.Mkdir(nil, fs.Root(), "src", 0755)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Root().Nlink != 3 {
		t.Fatalf("root nlink = %d", fs.Root().Nlink)
	}
	fs.Create(nil, d, "a.c", 0644)
	if err := fs.Rmdir(nil, fs.Root(), "src"); err != ErrNotEmpty {
		t.Fatalf("rmdir non-empty = %v", err)
	}
	fs.Remove(nil, d, "a.c")
	if err := fs.Rmdir(nil, fs.Root(), "src"); err != nil {
		t.Fatal(err)
	}
	if fs.Root().Nlink != 2 {
		t.Fatalf("root nlink = %d after rmdir", fs.Root().Nlink)
	}
}

func TestRename(t *testing.T) {
	fs := newFS()
	root := fs.Root()
	d1, _ := fs.Mkdir(nil, root, "d1", 0755)
	d2, _ := fs.Mkdir(nil, root, "d2", 0755)
	f, _ := fs.Create(nil, d1, "old", 0644)
	if err := fs.Rename(nil, d1, "old", d2, "new"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup(d1, "old"); err != ErrNoEnt {
		t.Fatal("source still present")
	}
	got, err := fs.Lookup(d2, "new")
	if err != nil || got != f {
		t.Fatalf("target = %v, %v", got, err)
	}
	// Rename over an existing file replaces it.
	g, _ := fs.Create(nil, d2, "other", 0644)
	_ = g
	if err := fs.Rename(nil, d2, "new", d2, "other"); err != nil {
		t.Fatal(err)
	}
	got, err = fs.Lookup(d2, "other")
	if err != nil || got != f {
		t.Fatalf("replaced target = %v, %v", got, err)
	}
}

func TestLinkAndNlink(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create(nil, fs.Root(), "orig", 0644)
	if err := fs.Link(nil, f, fs.Root(), "alias"); err != nil {
		t.Fatal(err)
	}
	if f.Nlink != 2 {
		t.Fatalf("nlink = %d", f.Nlink)
	}
	fs.Remove(nil, fs.Root(), "orig")
	if got, err := fs.Lookup(fs.Root(), "alias"); err != nil || got != f {
		t.Fatal("alias lost after removing original")
	}
	fs.Remove(nil, fs.Root(), "alias")
	if fs.NumInodes() != 1 {
		t.Fatalf("inode leak: %d", fs.NumInodes())
	}
}

func TestSymlinkReadlink(t *testing.T) {
	fs := newFS()
	l, err := fs.Symlink(nil, fs.Root(), "lnk", "/usr/include", 0777)
	if err != nil {
		t.Fatal(err)
	}
	target, err := fs.Readlink(l)
	if err != nil || target != "/usr/include" {
		t.Fatalf("readlink = %q, %v", target, err)
	}
	if _, err := fs.Readlink(fs.Root()); err == nil {
		t.Fatal("readlink of a directory succeeded")
	}
}

func TestSetattrTruncate(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create(nil, fs.Root(), "t", 0644)
	fs.WriteAt(nil, f, 0, bytes.Repeat([]byte{0xff}, 2*BlockSize), 1)
	s := nfsproto.NewSattr()
	s.Size = 100
	fs.Setattr(nil, f, s)
	if f.Size != 100 {
		t.Fatalf("size = %d", f.Size)
	}
	// Growing back exposes zeros, not stale data.
	s2 := nfsproto.NewSattr()
	s2.Size = 200
	fs.Setattr(nil, f, s2)
	dst := make([]byte, 100)
	fs.ReadAt(nil, f, 100, dst, true)
	for _, b := range dst {
		if b != 0 {
			t.Fatal("stale data after re-extend")
		}
	}
	// Mode change.
	s3 := nfsproto.NewSattr()
	s3.Mode = 0600
	fs.Setattr(nil, f, s3)
	if f.Mode != 0600 {
		t.Fatalf("mode = %o", f.Mode)
	}
}

func TestFHResolve(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create(nil, fs.Root(), "x", 0644)
	fh := fs.FH(f)
	got, err := fs.Resolve(fh)
	if err != nil || got != f {
		t.Fatalf("resolve = %v, %v", got, err)
	}
	fs.Remove(nil, fs.Root(), "x")
	if _, err := fs.Resolve(fh); err != ErrStale {
		t.Fatalf("stale resolve = %v", err)
	}
	other := nfsproto.MakeFH(99, 2, 1)
	if _, err := fs.Resolve(other); err != ErrStale {
		t.Fatalf("wrong-fsid resolve = %v", err)
	}
}

func TestMtimeAdvancesOnWrite(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create(nil, fs.Root(), "m", 0644)
	before := f.Mtime
	fs.WriteAt(nil, f, 0, []byte("x"), 1)
	if !before.Less(f.Mtime) {
		t.Fatalf("mtime did not advance: %v -> %v", before, f.Mtime)
	}
}

func TestDiskChargesTime(t *testing.T) {
	env := sim.New(1)
	defer env.Close()
	disk := NewRD53(env, "rd53")
	fs := New(1, disk, nil)
	var elapsed sim.Time
	env.Spawn("writer", func(p *sim.Proc) {
		f, _ := fs.Create(p, fs.Root(), "big", 0644)
		start := p.Now()
		for i := 0; i < 12; i++ {
			fs.WriteAt(p, f, uint32(i*BlockSize), make([]byte, BlockSize), 2)
		}
		elapsed = p.Now() - start
	})
	env.RunAll()
	// 12 blocks x (8K data + 512B inode) ≈ 12 x (34+27.4) ms ≈ 740 ms.
	if elapsed < 400*time.Millisecond || elapsed > 2*time.Second {
		t.Fatalf("12 sync block writes took %v", elapsed)
	}
	if disk.WriteOps != 2+12*2 {
		t.Fatalf("WriteOps = %d", disk.WriteOps)
	}
	if disk.Utilization() == 0 {
		t.Fatal("disk utilization not tracked")
	}
}

func TestStatfs(t *testing.T) {
	fs := newFS()
	f, _ := fs.Create(nil, fs.Root(), "f", 0644)
	fs.WriteAt(nil, f, 0, make([]byte, 3*BlockSize), 1)
	st := fs.Statfs()
	if st.Blocks-st.BFree != 3 {
		t.Fatalf("used = %d, want 3", st.Blocks-st.BFree)
	}
	fs.Remove(nil, fs.Root(), "f")
	st = fs.Statfs()
	if st.Blocks != st.BFree {
		t.Fatal("blocks not freed")
	}
}

func TestNumDirBlocks(t *testing.T) {
	fs := newFS()
	d, _ := fs.Mkdir(nil, fs.Root(), "d", 0755)
	if NumDirBlocks(d) != 1 {
		t.Fatal("empty dir should occupy one block")
	}
	for i := 0; i < 100; i++ {
		fs.Create(nil, d, string(rune('a'+i%26))+string(rune('0'+i/26)), 0644)
	}
	if nb := NumDirBlocks(d); nb != 4 {
		t.Fatalf("100 entries = %d blocks, want 4", nb)
	}
}
