package renonfs

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"renonfs/internal/sim"
	"renonfs/internal/stats"
)

func TestRigSmoke(t *testing.T) {
	r := NewRig(RigConfig{Seed: 1})
	defer r.Close()
	var got string
	r.Env.Spawn("smoke", func(p *sim.Proc) {
		m, err := r.Mount(p, TCP, RenoClient())
		if err != nil {
			t.Errorf("mount: %v", err)
			return
		}
		f, err := m.Create(p, "hello.txt", 0644)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		f.Write(p, []byte("hello over tcp"))
		f.Close(p)
		g, err := m.Open(p, "hello.txt")
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		buf := make([]byte, 64)
		n, _ := g.Read(p, buf)
		got = string(buf[:n])
		g.Close(p)
	})
	r.Env.Run(5 * time.Minute)
	if got != "hello over tcp" {
		t.Fatalf("got %q", got)
	}
}

func TestExperimentRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Experiments() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment: %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	want := []string{"graph1", "graph2", "graph3", "graph4", "graph5", "table1",
		"graph6", "graph7", "graph8", "graph9", "profile3",
		"table2", "table3", "table4", "table5", "appendixA", "ablations",
		"futurework", "saturation"}
	for _, id := range want {
		if !seen[id] {
			t.Fatalf("missing experiment %q", id)
		}
	}
	if _, err := RunExperiment("no-such", ExpConfig{}); err == nil {
		t.Fatal("unknown experiment did not error")
	}
}

// cell parses a numeric table cell.
func cell(t *testing.T, tb *stats.Table, row, col int) float64 {
	t.Helper()
	if row >= len(tb.Rows) || col >= len(tb.Rows[row]) {
		t.Fatalf("table %q missing cell (%d,%d):\n%s", tb.Title, row, col, tb)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(tb.Rows[row][col]), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, tb.Rows[row][col], err)
	}
	return v
}

func TestGraph1QuickShape(t *testing.T) {
	tabs, err := RunExperiment("graph1", ExpConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	tb := tabs[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d:\n%s", len(tb.Rows), tb)
	}
	// At the lowest load on a clean LAN: TCP lookups should cost a few ms
	// more than UDP (the paper: ~+7ms fixed offset).
	udpDyn := cell(t, tb, 0, 2)
	tcp := cell(t, tb, 0, 3)
	if tcp <= udpDyn {
		t.Errorf("LAN lookup RTT: tcp %.2f <= udp-dyn %.2f; paper shows a TCP premium\n%s", tcp, udpDyn, tb)
	}
	if tcp-udpDyn > 40 {
		t.Errorf("TCP premium %.2f ms implausibly large\n%s", tcp-udpDyn, tb)
	}
}

func TestGraph6QuickShape(t *testing.T) {
	tabs, err := RunExperiment("graph6", ExpConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	tb := tabs[0]
	// Averaged over the load points, TCP must cost more server CPU than
	// UDP, in the ballpark of the paper's ~20%.
	sum := 0.0
	for i := range tb.Rows {
		sum += cell(t, tb, i, 3)
	}
	ratio := sum / float64(len(tb.Rows))
	if ratio < 1.05 || ratio > 1.6 {
		t.Errorf("mean tcp/udp server CPU ratio = %.2f, want ~1.2\n%s", ratio, tb)
	}
}

func TestProfile3QuickShape(t *testing.T) {
	tabs, err := RunExperiment("profile3", ExpConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 3 {
		t.Fatalf("tables = %d", len(tabs))
	}
	before := tabs[0]
	// The top pre-tuning bucket must be the NIC copy path (§3: over a
	// third of CPU cycles in low-level network interface handling).
	if before.Rows[0][0] != "nic_copy" {
		t.Errorf("top bucket before tuning = %q, want nic_copy\n%s", before.Rows[0][0], before)
	}
	// Saving within a plausible band around the paper's ~12%.
	summary := tabs[2]
	saving := cell(t, summary, 2, 1)
	if saving < 5 || saving > 30 {
		t.Errorf("tuning saving = %.1f%%, want 5-30%%\n%s", saving, summary)
	}
}

func TestGraph8QuickShape(t *testing.T) {
	tabs, err := RunExperiment("graph8", ExpConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	tb := tabs[0]
	// The Ultrix server must be slower for lookups at every load.
	for i := range tb.Rows {
		reno := cell(t, tb, i, 1)
		ultrix := cell(t, tb, i, 2)
		if ultrix <= reno {
			t.Errorf("row %d: ultrix %.2f <= reno %.2f\n%s", i, ultrix, reno, tb)
		}
	}
}

func TestTable5QuickShape(t *testing.T) {
	tabs, err := RunExperiment("table5", ExpConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	tb := tabs[0]
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d\n%s", len(tb.Rows), tb)
	}
	// 100KB column: local < write-thru; noconsist dramatically faster
	// than every consistent NFS config (Table 5's headline).
	local := cell(t, tb, 0, 3)
	wthru := cell(t, tb, 1, 3)
	noc := cell(t, tb, 5, 3)
	if !(local < wthru) {
		t.Errorf("local %.0f >= write-thru %.0f\n%s", local, wthru, tb)
	}
	if !(noc*3 < wthru) {
		t.Errorf("noconsist %.0f not << write-thru %.0f\n%s", noc, wthru, tb)
	}
	// No-data column: all NFS configs within the same ballpark.
	for i := 1; i < 6; i++ {
		v := cell(t, tb, i, 1)
		if v <= 0 || v > 3000 {
			t.Errorf("row %d no-data = %.0f ms\n%s", i, v, tb)
		}
	}
}

func TestFutureWorkQuickShape(t *testing.T) {
	tabs, err := RunExperiment("futurework", ExpConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 4 {
		t.Fatalf("tables = %d", len(tabs))
	}
	// Create-Delete 100K: leases must land near the noconsist bound and
	// far below push-on-close Reno.
	cd := tabs[1]
	reno := cell(t, cd, 0, 1)
	leases := cell(t, cd, 1, 1)
	bound := cell(t, cd, 2, 1)
	if !(leases < reno/2) {
		t.Errorf("leases %.0f not well below push-on-close %.0f\n%s", leases, reno, cd)
	}
	if leases > 2*bound {
		t.Errorf("leases %.0f far from the noconsist bound %.0f\n%s", leases, bound, cd)
	}
	// ls -lR: the extension must collapse the per-file lookup storm.
	ls := tabs[2]
	stdTotal := cell(t, ls, 0, 4)
	extTotal := cell(t, ls, 1, 4)
	if !(extTotal*5 < stdTotal) {
		t.Errorf("readdirlook total %.0f not <<5x standard %.0f\n%s", extTotal, stdTotal, ls)
	}
}

func TestTable3QuickShape(t *testing.T) {
	tabs, err := RunExperiment("table3", ExpConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	tb := tabs[0]
	if len(tb.Rows) != 8 {
		t.Fatalf("rows = %d\n%s", len(tb.Rows), tb)
	}
	find := func(name string) int {
		for i, r := range tb.Rows {
			if r[0] == name {
				return i
			}
		}
		t.Fatalf("row %q missing", name)
		return -1
	}
	lk := find("Lookup")
	if !(cell(t, tb, lk, 3) > 1.5*cell(t, tb, lk, 1)) {
		t.Errorf("lookups: Ultrix should be >1.5x Reno\n%s", tb)
	}
	rd := find("Read")
	if !(cell(t, tb, rd, 1) > cell(t, tb, rd, 3)) {
		t.Errorf("reads: Reno should exceed Ultrix\n%s", tb)
	}
	wr := find("Write")
	if !(cell(t, tb, wr, 3) > cell(t, tb, wr, 1)) || !(cell(t, tb, wr, 2) < cell(t, tb, wr, 1)) {
		t.Errorf("writes: want Ultrix > Reno > noconsist\n%s", tb)
	}
}

func TestSaturationQuickShape(t *testing.T) {
	tabs, err := RunExperiment("saturation", ExpConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	tb := tabs[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d\n%s", len(tb.Rows), tb)
	}
	// At the lowest load the server keeps up; at the highest it is
	// CPU-saturated and the achieved rate has plateaued well below offered.
	lowOffered, lowAchieved := cell(t, tb, 0, 0), cell(t, tb, 0, 1)
	hiOffered, hiAchieved := cell(t, tb, 2, 0), cell(t, tb, 2, 1)
	hiCPU := cell(t, tb, 2, 3)
	// Quick windows undercount window-edge operations; 70% is plenty to
	// distinguish "keeping up" from the saturated plateau.
	if lowAchieved < 0.7*lowOffered {
		t.Errorf("under light load achieved %.1f << offered %.1f\n%s", lowAchieved, lowOffered, tb)
	}
	if hiAchieved > 0.75*hiOffered {
		t.Errorf("no saturation: achieved %.1f at offered %.1f\n%s", hiAchieved, hiOffered, tb)
	}
	if hiCPU < 60 {
		t.Errorf("server CPU %.0f%% at saturation; should be CPU bound\n%s", hiCPU, tb)
	}
	// Response time degrades across the sweep.
	if !(cell(t, tb, 2, 2) > 2*cell(t, tb, 0, 2)) {
		t.Errorf("RTT did not degrade with load\n%s", tb)
	}
}
